package core

import (
	"math/bits"

	"repro/internal/partition"
	"repro/internal/topology"
)

// Scratch holds every buffer the search kernels need, so a steady-state
// search allocates nothing: the per-call summary/freeLeaves/spine slices and
// lowestBits results that used to be made fresh on every candidate of every
// scheduling cycle live here instead, sized once per tree geometry.
//
// The recursive kernels are methods on Scratch rather than closures so that
// recursion carries no heap-allocated environment, and a successful search
// builds its partition directly into the result buffers below.
//
// Beyond buffers, a Scratch caches per-pod machine summaries — leaf free
// counts, demand-filtered uplink masks, width histograms, whole-leaf lists,
// and spine masks — keyed by (state, state version, demand); see
// summaries.go. Within one Search call the state cannot change, so every
// factorization reads the summaries the first one computed; across calls the
// state's monotone version counter invalidates them exactly when a mutation
// happened. The summaries feed the admissibility bounds of DESIGN.md §15,
// which let the search reject provably-infeasible pods and factorizations
// without entering the backtracking recursion.
//
// Aliasing contract: the *partition.Partition a search returns points into
// the Scratch it ran on and is valid only until the next search on that
// Scratch. Callers that consume the partition immediately (convert it to a
// topology.Placement, verify it, read it) need nothing special; callers that
// retain it must copy it first with Partition.Clone.
//
// A Scratch must not be shared between goroutines, and each allocator owns
// its own (allocator Clone methods deliberately give the clone a fresh zero
// Scratch). The zero value is ready to use; buffers are sized lazily to the
// tree of the first search and resized if a different tree is passed.
type Scratch struct {
	tree *topology.FatTree

	// In-flight search parameters, set by FindTwoLevel/FindThreeLevel.
	pod    int // two-level: the pod under search
	lt     int // full leaves per tree (LT)
	nl     int // nodes per full leaf (three-level: tree.NodesPerLeaf)
	nrl    int // remainder-leaf node count
	nTrees int // three-level: full trees T
	lrt    int // three-level: full leaves in the remainder tree
	steps  int // remaining backtracking budget

	// noBounds disables every admissibility bound and branch-and-bound
	// cutoff, turning the search back into the exhaustive pre-pruning
	// algorithm. Test-only: the pruned-vs-unpruned differential
	// (FuzzSearchPruned, TestSearchPrunedMatchesUnpruned) pins that pruning
	// only ever skips provably-infeasible subtrees.
	noBounds bool

	// Per-epoch machine summaries (see summaries.go). sumSt/sumVer/sumDemand
	// identify the (state, version, demand) the summaries describe; epoch
	// advances when they go stale, and podStamp marks which pods have been
	// summarized in the current epoch — pods are summarized lazily, so a
	// first-factorization two-level hit never pays for the whole machine.
	sumSt     *topology.State
	sumVer    uint64
	sumDemand int32
	epoch     uint32
	podStamp  []uint32

	lfFree      []int32  // per-leaf free-node count; global leaf index
	lfUp        []uint64 // per-leaf demand-filtered uplink mask
	lfCap       []int32  // per-leaf width min(free, popcount(up))
	capHist     []int32  // per-pod: #leaves of width >= n; stride NodesPerLeaf+2
	freeLeaves  []int    // per-pod whole-leaf lists, stride LeavesPerPod
	nFree       []int    // valid freeLeaves entries per pod
	spine       []uint64 // per-(pod, L2) free-spine masks, stride L2PerPod
	minSpinePop []int32  // per-pod min over L2 of popcount(spine)

	// Cross-pod aggregates for the three-level factorization bounds, built
	// once per epoch after every pod is summarized (see ensureAggregates).
	aggStamp    uint32
	nFreeHist   []int32 // #pods with nFree >= n; len LeavesPerPod+2
	spinePopCnt []int32 // per-L2: #pods with popcount(spine) >= c; stride SpinesPerGroup+2

	// Two-level per-call state. elig masks the leaves of the current pod
	// wide enough for the current nL (leaf indices within a pod fit uint64
	// at every supported radix).
	elig    uint64
	chosenL []int
	inUseL  []bool

	// Three-level per-call state. podOK marks pods eligible for the current
	// (T, LT) shape; podEligTail[p] counts eligible pods with index >= p,
	// the suffix cutoff (pod counts can exceed 64, so no bitmask here).
	podOK       []bool
	podEligTail []int32
	f           []uint64 // running per-L2 spine intersection
	chosenP     []int
	inUseP      []bool

	// Result buffers: the partition a successful search returns points into
	// these (see the aliasing contract above). spineInts is the arena the
	// spineSet/spineSetR map values are carved from.
	s, sr     []int
	leafBuf   []partition.LeafAlloc
	treeBuf   []partition.TreeAlloc
	spineSet  map[int][]int
	spineSetR map[int][]int
	spineInts []int
	part      partition.Partition
}

// ensure sizes the buffers for the tree. Buffer capacities cover the worst
// case for their geometry, so no search on the same tree grows them.
func (sc *Scratch) ensure(t *topology.FatTree) {
	if sc.tree == t {
		return
	}
	sc.tree = t
	sc.sumSt, sc.epoch, sc.aggStamp = nil, 0, 0
	leaves := t.Leaves()
	sc.podStamp = make([]uint32, t.Pods)
	sc.lfFree = make([]int32, leaves)
	sc.lfUp = make([]uint64, leaves)
	sc.lfCap = make([]int32, leaves)
	sc.capHist = make([]int32, t.Pods*(t.NodesPerLeaf+2))
	sc.freeLeaves = make([]int, leaves)
	sc.nFree = make([]int, t.Pods)
	sc.spine = make([]uint64, t.Pods*t.L2PerPod)
	sc.minSpinePop = make([]int32, t.Pods)
	sc.nFreeHist = make([]int32, t.LeavesPerPod+2)
	sc.spinePopCnt = make([]int32, t.L2PerPod*(t.SpinesPerGroup+2))
	sc.chosenL = make([]int, 0, t.LeavesPerPod)
	sc.inUseL = make([]bool, t.LeavesPerPod)
	sc.podOK = make([]bool, t.Pods)
	sc.podEligTail = make([]int32, t.Pods+1)
	sc.f = make([]uint64, t.L2PerPod)
	sc.chosenP = make([]int, 0, t.Pods)
	sc.inUseP = make([]bool, t.Pods)
	sc.s = make([]int, 0, t.L2PerPod)
	sc.sr = make([]int, 0, t.L2PerPod)
	sc.leafBuf = make([]partition.LeafAlloc, 0, t.Leaves()+t.Pods)
	sc.treeBuf = make([]partition.TreeAlloc, 0, t.Pods)
	sc.spineSet = make(map[int][]int, t.L2PerPod)
	sc.spineSetR = make(map[int][]int, t.L2PerPod)
	// Worst case per L2 index: LT spines for the full set, the remainder
	// selection, and the full set again while it is being assembled.
	sc.spineInts = make([]int, 0, 3*t.L2PerPod*t.SpinesPerGroup)
}

// appendLowestBits appends the indices of the lowest n set bits of m to dst
// (in ascending order). It panics if m has fewer than n bits set; callers
// establish that invariant first.
func appendLowestBits(dst []int, m uint64, n int) []int {
	for ; n > 0; n-- {
		i := bits.TrailingZeros64(m)
		if i == 64 {
			panic("core: appendLowestBits underflow")
		}
		dst = append(dst, i)
		m &^= 1 << i
	}
	return dst
}
