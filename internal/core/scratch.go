package core

import (
	"math/bits"

	"repro/internal/partition"
	"repro/internal/topology"
)

// leafInfo is the per-leaf view the two-level search works from: the leaf's
// free-uplink mask at the search demand and its free-node count.
type leafInfo struct {
	up   uint64
	free int
}

// Scratch holds every buffer the search kernels need, so a steady-state
// search allocates nothing: the per-call info/freeLeaves/spine slices and
// lowestBits results that used to be made fresh on every candidate of every
// scheduling cycle live here instead, sized once per tree geometry.
//
// The recursive kernels are methods on Scratch rather than closures so that
// recursion carries no heap-allocated environment, and a successful search
// builds its partition directly into the result buffers below.
//
// Aliasing contract: the *partition.Partition a search returns points into
// the Scratch it ran on and is valid only until the next search on that
// Scratch. Callers that consume the partition immediately (convert it to a
// topology.Placement, verify it, read it) need nothing special; callers that
// retain it must copy it first with Partition.Clone.
//
// A Scratch must not be shared between goroutines, and each allocator owns
// its own (allocator Clone methods deliberately give the clone a fresh zero
// Scratch). The zero value is ready to use; buffers are sized lazily to the
// tree of the first search and resized if a different tree is passed.
type Scratch struct {
	tree *topology.FatTree

	// In-flight search parameters, set by FindTwoLevel/FindThreeLevel.
	st     *topology.State
	demand int32
	pod    int // two-level: the pod under search
	lt     int // full leaves per tree (LT)
	nl     int // nodes per full leaf (three-level: tree.NodesPerLeaf)
	nrl    int // remainder-leaf node count
	nTrees int // three-level: full trees T
	lrt    int // three-level: full leaves in the remainder tree
	steps  int // three-level: remaining backtracking budget

	// Two-level buffers.
	info    []leafInfo
	chosenL []int
	inUseL  []bool

	// Three-level buffers. freeLeaves and spine are flat with strides
	// LeavesPerPod and L2PerPod respectively; nFree counts the valid
	// freeLeaves entries per pod.
	freeLeaves []int
	nFree      []int
	spine      []uint64
	f          []uint64 // running per-L2 spine intersection
	chosenP    []int
	inUseP     []bool

	// Result buffers: the partition a successful search returns points into
	// these (see the aliasing contract above). spineInts is the arena the
	// spineSet/spineSetR map values are carved from.
	s, sr     []int
	leafBuf   []partition.LeafAlloc
	treeBuf   []partition.TreeAlloc
	spineSet  map[int][]int
	spineSetR map[int][]int
	spineInts []int
	part      partition.Partition
}

// ensure sizes the buffers for the tree. Buffer capacities cover the worst
// case for their geometry, so no search on the same tree grows them.
func (sc *Scratch) ensure(t *topology.FatTree) {
	if sc.tree == t {
		return
	}
	sc.tree = t
	sc.info = make([]leafInfo, t.LeavesPerPod)
	sc.chosenL = make([]int, 0, t.LeavesPerPod)
	sc.inUseL = make([]bool, t.LeavesPerPod)
	sc.freeLeaves = make([]int, t.Pods*t.LeavesPerPod)
	sc.nFree = make([]int, t.Pods)
	sc.spine = make([]uint64, t.Pods*t.L2PerPod)
	sc.f = make([]uint64, t.L2PerPod)
	sc.chosenP = make([]int, 0, t.Pods)
	sc.inUseP = make([]bool, t.Pods)
	sc.s = make([]int, 0, t.L2PerPod)
	sc.sr = make([]int, 0, t.L2PerPod)
	sc.leafBuf = make([]partition.LeafAlloc, 0, t.Leaves()+t.Pods)
	sc.treeBuf = make([]partition.TreeAlloc, 0, t.Pods)
	sc.spineSet = make(map[int][]int, t.L2PerPod)
	sc.spineSetR = make(map[int][]int, t.L2PerPod)
	// Worst case per L2 index: LT spines for the full set, the remainder
	// selection, and the full set again while it is being assembled.
	sc.spineInts = make([]int, 0, 3*t.L2PerPod*t.SpinesPerGroup)
}

// appendLowestBits appends the indices of the lowest n set bits of m to dst
// (in ascending order). It panics if m has fewer than n bits set; callers
// establish that invariant first.
func appendLowestBits(dst []int, m uint64, n int) []int {
	for ; n > 0; n-- {
		i := bits.TrailingZeros64(m)
		if i == 64 {
			panic("core: appendLowestBits underflow")
		}
		dst = append(dst, i)
		m &^= 1 << i
	}
	return dst
}
