package core
