package core_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// BenchmarkSearch measures the allocation search kernels against the reused
// Scratch across tree sizes. The two-level and three-level cases run on an
// empty machine (hit on the first viable factorization); the miss case runs
// on a machine fragmented so that no whole leaf is free, forcing a full
// exhaustive scan — the shape the engine's feasibility cache exists to
// avoid repeating. allocs/op must be 0 for all of them in steady state.
func BenchmarkSearch(b *testing.B) {
	for _, radix := range []int{16, 32, 64} {
		tree := topology.MustNew(radix)
		podNodes := tree.LeavesPerPod * tree.NodesPerLeaf

		empty := topology.NewState(tree, 1)
		cases := []struct {
			name string
			st   *topology.State
			size int
			ok   bool
		}{
			// Fits one pod minus a few nodes: two-level with a remainder leaf.
			{"two-level", empty, podNodes - 3, true},
			// Spans several pods plus a remainder tree: three-level search.
			{"three-level", empty, 3*podNodes + tree.NodesPerLeaf, true},
		}

		// Fragment a separate state: one node taken on every leaf leaves no
		// whole leaf free, so a full-pod request fails only after both passes
		// exhaust every factorization.
		frag := topology.NewState(tree, 1)
		pl := topology.NewPlacement(1, 1)
		for leaf := 0; leaf < tree.Leaves(); leaf++ {
			pl.AddLeafNodes(leaf, 1)
		}
		pl.Apply(frag)
		cases = append(cases, struct {
			name string
			st   *topology.State
			size int
			ok   bool
		}{"miss", frag, podNodes, false})

		for _, c := range cases {
			b.Run(fmt.Sprintf("radix=%d/%s", radix, c.name), func(b *testing.B) {
				sc := &core.Scratch{}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, ok := core.Search(c.st, 1, c.size, false, core.DefaultSearchBudget, sc)
					if ok != c.ok {
						b.Fatalf("size %d: ok = %v, want %v", c.size, ok, c.ok)
					}
				}
			})
		}

		// miss-cold defeats the scratch's epoch cache: a one-node churn
		// placement bumps the state version every iteration, so each search
		// pays the full summary rebuild — the first-probe miss cost the
		// steady-state miss case no longer shows.
		b.Run(fmt.Sprintf("radix=%d/miss-cold", radix), func(b *testing.B) {
			sc := &core.Scratch{}
			churn := topology.NewPlacement(2, 1)
			churn.AddLeafNodes(0, 1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				churn.Apply(frag)
				churn.Release(frag)
				_, ok := core.Search(frag, 1, podNodes, false, core.DefaultSearchBudget, sc)
				if ok {
					b.Fatalf("size %d: expected miss", podNodes)
				}
			}
		})
	}
}
