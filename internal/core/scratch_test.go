package core_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

// TestSearchScratchReuseMatchesFresh is the differential pin for the
// zero-allocation search kernels: a long-lived Scratch reused across many
// searches interleaved with state churn must produce exactly the partition a
// single-use scratch produces — same success verdict, same shape, same spine
// sets, and (for the three-level pass) the same backtracking-budget spend.
// Any buffer that survives a search without being reset shows up here as a
// divergence.
func TestSearchScratchReuseMatchesFresh(t *testing.T) {
	for _, radix := range []int{4, 8} {
		tree := topology.MustNew(radix)
		rng := rand.New(rand.NewSource(int64(radix)))
		a := core.NewAllocator(tree) // drives the state churn
		st := a.State()
		sc := &core.Scratch{} // the reused scratch under test

		var live []*topology.Placement
		id := topology.JobID(1)
		for step := 0; step < 250; step++ {
			// Churn the state: mostly allocate, sometimes release, so the
			// probes below see fragmented, partially-full machines.
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				a.Release(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			} else if st.FreeNodes() > 0 {
				size := 1 + rng.Intn(st.FreeNodes())
				if pl, ok := a.Allocate(id, size); ok {
					live = append(live, pl)
					id++
				}
			}

			for probe := 0; probe < 4; probe++ {
				size := 1 + rng.Intn(tree.Nodes())
				sparse := rng.Intn(2) == 1
				p1, ok1 := core.Search(st, 1, size, sparse, core.DefaultSearchBudget, sc)
				p2, ok2 := core.Search(st, 1, size, sparse, core.DefaultSearchBudget, nil)
				if ok1 != ok2 {
					t.Fatalf("radix %d step %d: size %d sparse=%v: reused scratch ok=%v, fresh ok=%v",
						radix, step, size, sparse, ok1, ok2)
				}
				if !ok1 {
					continue
				}
				if !reflect.DeepEqual(p1, p2) {
					t.Fatalf("radix %d step %d: size %d sparse=%v: partitions diverge\nreused: %+v\nfresh:  %+v",
						radix, step, size, sparse, p1, p2)
				}
				if err := p1.Verify(tree); err != nil {
					t.Fatalf("radix %d step %d: size %d: invalid partition: %v", radix, step, size, err)
				}
			}
		}
	}
}

// TestFindThreeLevelScratchBudgetParity pins that the reused scratch spends
// the backtracking budget identically to a fresh one: the remaining-steps
// value after a search is part of the policies' observable behavior (LC+S
// and Jigsaw both thread a budget through), so a scratch that changes the
// exploration order would silently change schedules.
func TestFindThreeLevelScratchBudgetParity(t *testing.T) {
	tree := topology.MustNew(8)
	rng := rand.New(rand.NewSource(7))
	a := core.NewAllocator(tree)
	st := a.State()
	sc := &core.Scratch{}

	id := topology.JobID(1)
	for step := 0; step < 120; step++ {
		if st.FreeNodes() > 8 {
			if _, ok := a.Allocate(id, 1+rng.Intn(8)); ok {
				id++
			}
		}
		nl := tree.NodesPerLeaf
		T := 1 + rng.Intn(tree.Pods)
		lt := 1 + rng.Intn(tree.LeavesPerPod)
		lrt := rng.Intn(lt)
		nrl := rng.Intn(nl)
		s1, s2 := core.DefaultSearchBudget, core.DefaultSearchBudget
		p1, ok1 := core.FindThreeLevel(st, 1, T, lt, lrt, nrl, &s1, sc)
		p2, ok2 := core.FindThreeLevel(st, 1, T, lt, lrt, nrl, &s2, nil)
		if ok1 != ok2 || s1 != s2 {
			t.Fatalf("step %d (T=%d lt=%d lrt=%d nrl=%d): reused (ok=%v steps=%d) vs fresh (ok=%v steps=%d)",
				step, T, lt, lrt, nrl, ok1, s1, ok2, s2)
		}
		if ok1 && !reflect.DeepEqual(p1, p2) {
			t.Fatalf("step %d: three-level partitions diverge\nreused: %+v\nfresh:  %+v", step, p1, p2)
		}
	}
}

// TestPartitionCloneSurvivesScratchReuse pins the aliasing contract: a
// partition returned by a search is only valid until the scratch's next
// search, but its Clone must be a fully independent copy that later searches
// cannot corrupt.
func TestPartitionCloneSurvivesScratchReuse(t *testing.T) {
	tree := topology.MustNew(8)
	a := core.NewAllocator(tree)
	st := a.State()
	// Fragment the machine a little so the probe size needs a multi-tree
	// partition with spine sets (the scratch's arena-backed buffers).
	for i := 0; i < 5; i++ {
		if _, ok := a.Allocate(topology.JobID(i+1), 3); !ok {
			t.Fatalf("setup allocation %d failed", i)
		}
	}

	sc := &core.Scratch{}
	const size = 77
	p, ok := core.Search(st, 1, size, false, core.DefaultSearchBudget, sc)
	if !ok {
		t.Fatalf("no partition of size %d on a lightly-loaded machine", size)
	}
	clone := p.Clone()

	// Hammer the same scratch with searches of every other size, overwriting
	// every result buffer the original partition aliased.
	for s := 1; s <= tree.Nodes(); s++ {
		core.Search(st, 1, s, s%2 == 0, core.DefaultSearchBudget, sc)
	}

	fresh, ok := core.Search(st, 1, size, false, core.DefaultSearchBudget, nil)
	if !ok {
		t.Fatal("fresh recomputation failed on an unchanged state")
	}
	if !reflect.DeepEqual(clone, fresh) {
		t.Fatalf("clone corrupted by later searches on its scratch\nclone: %+v\nfresh: %+v", clone, fresh)
	}
	if err := clone.Verify(tree); err != nil {
		t.Fatalf("clone no longer verifies: %v", err)
	}
}
