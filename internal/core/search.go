// Package core implements the Jigsaw allocation algorithm (Algorithm 1 of
// the paper): a backtracking search for node-and-link allocations satisfying
// the formal conditions of Section 3.2, restricted — for allocations that
// span three levels — to whole leaves (all nodes per leaf except a single
// remainder leaf). The restriction is what keeps the search fast and
// external fragmentation low (Section 4).
//
// The two search primitives, FindTwoLevel and FindThreeLevel, are exported
// because the LaaS comparison scheme (internal/laas) reuses them at
// whole-leaf granularity.
package core

import (
	"math/bits"

	"repro/internal/partition"
	"repro/internal/topology"
)

// lowestBits returns the indices of the lowest n set bits of m. It panics if
// m has fewer than n bits set; callers establish that invariant first.
func lowestBits(m uint64, n int) []int {
	out := make([]int, 0, n)
	for len(out) < n {
		i := bits.TrailingZeros64(m)
		if i == 64 {
			panic("core: lowestBits underflow")
		}
		out = append(out, i)
		m &^= 1 << i
	}
	return out
}

// FindTwoLevel searches one pod for a two-level allocation of LT leaves with
// nL nodes each plus an optional remainder leaf with nrL < nL nodes, such
// that the chosen full leaves share nL free uplinks to a common set S of L2
// switches and the remainder leaf has nrL free uplinks inside S (the
// conditions of Section 3.2 restricted to a single tree). Links must have
// residual capacity of at least demand. It returns the first partition
// found, scanning leaves in index order with exhaustive backtracking.
func FindTwoLevel(st *topology.State, demand int32, pod, LT, nL, nrL int) (*partition.Partition, bool) {
	t := st.Tree
	needLeaves := LT
	if nrL > 0 {
		needLeaves++
	}
	if LT < 1 || nL < 1 || nL > t.NodesPerLeaf || nrL >= nL || needLeaves > t.LeavesPerPod {
		return nil, false
	}
	// Pod-level counter skip: the LT full leaves need nL free nodes each and
	// the remainder leaf nrL more, all on distinct leaves of this pod.
	if st.FreeInPod(pod) < LT*nL+nrL {
		return nil, false
	}

	type leafInfo struct {
		up   uint64
		free int
	}
	info := make([]leafInfo, t.LeavesPerPod)
	for l := 0; l < t.LeavesPerPod; l++ {
		leafIdx := t.LeafIndex(pod, l)
		info[l] = leafInfo{up: st.LeafUpMask(leafIdx, demand), free: st.FreeInLeaf(leafIdx)}
	}

	chosen := make([]int, 0, LT)
	inUse := make([]bool, t.LeavesPerPod)

	// finish tries to complete the allocation once LT full leaves are
	// chosen with common uplink mask m.
	finish := func(m uint64) (*partition.Partition, bool) {
		var srMask uint64
		var sr []int
		remLeaf := -1
		if nrL > 0 {
			for l := 0; l < t.LeavesPerPod; l++ {
				if inUse[l] || info[l].free < nrL {
					continue
				}
				common := m & info[l].up
				if bits.OnesCount64(common) < nrL {
					continue
				}
				remLeaf = l
				sr = lowestBits(common, nrL)
				srMask = 0
				for _, i := range sr {
					srMask |= 1 << i
				}
				break
			}
			if remLeaf < 0 {
				return nil, false
			}
			rest := lowestBits(m&^srMask, nL-nrL)
			s := append(append([]int{}, sr...), rest...)
			sortInts(s)
			sortInts(sr)
			leaves := make([]partition.LeafAlloc, 0, LT+1)
			for _, l := range chosen {
				leaves = append(leaves, partition.LeafAlloc{Leaf: l, N: nL})
			}
			leaves = append(leaves, partition.LeafAlloc{Leaf: remLeaf, N: nrL})
			return &partition.Partition{
				NL: nL, LT: LT, S: s, Sr: sr,
				Trees: []partition.TreeAlloc{{Pod: pod, Leaves: leaves}},
			}, true
		}
		s := lowestBits(m, nL)
		leaves := make([]partition.LeafAlloc, 0, LT)
		for _, l := range chosen {
			leaves = append(leaves, partition.LeafAlloc{Leaf: l, N: nL})
		}
		return &partition.Partition{
			NL: nL, LT: LT, S: s,
			Trees: []partition.TreeAlloc{{Pod: pod, Leaves: leaves}},
		}, true
	}

	var rec func(start int, m uint64) (*partition.Partition, bool)
	rec = func(start int, m uint64) (*partition.Partition, bool) {
		if len(chosen) == LT {
			return finish(m)
		}
		// Prune: not enough leaves left to reach LT.
		for l := start; l <= t.LeavesPerPod-(LT-len(chosen)); l++ {
			if info[l].free < nL {
				continue
			}
			nm := m & info[l].up
			if bits.OnesCount64(nm) < nL {
				continue
			}
			chosen = append(chosen, l)
			inUse[l] = true
			if p, ok := rec(l+1, nm); ok {
				return p, true
			}
			inUse[l] = false
			chosen = chosen[:len(chosen)-1]
		}
		return nil, false
	}
	return rec(0, t.HalfMask())
}

// FindThreeLevel searches the machine for a whole-leaf three-level
// allocation: T full trees of LT completely-free leaves each, plus an
// optional remainder tree with LrT completely-free leaves and an optional
// remainder leaf with nrL nodes. Every full leaf uses all its uplinks, so
// the common L2 set S is the entire L2 level and what couples the trees is
// spine availability: each L2 index i needs a spine set S*_i of size LT free
// in every chosen full tree, with the remainder tree drawing its smaller
// subsets from S*_i. Links must have residual of at least demand.
//
// steps bounds the number of backtracking extensions explored (a guard
// against pathological states; Jigsaw's restriction keeps real searches tiny).
func FindThreeLevel(st *topology.State, demand int32, T, LT, LrT, nrL int, steps *int) (*partition.Partition, bool) {
	t := st.Tree
	nL := t.NodesPerLeaf
	treesNeeded := T
	hasRem := LrT > 0 || nrL > 0
	if hasRem {
		treesNeeded++
	}
	if T < 1 || LT < 1 || LT > t.LeavesPerPod || nrL >= nL || treesNeeded > t.Pods {
		return nil, false
	}
	if LrT*nL+nrL >= LT*nL {
		return nil, false // remainder tree must be strictly smaller
	}

	// Per-pod candidate information, read from the state's availability
	// indices: WholeLeafAvailable and SpineMask are O(1) for isolating
	// demands, and pods without a single whole-free leaf (per-pod free-node
	// counter below one leaf's worth) skip the leaf scan entirely.
	freeLeaves := make([][]int, t.Pods) // fully-free leaf indices per pod
	spine := make([][]uint64, t.Pods)   // per pod, per L2 index: free-spine mask
	for p := 0; p < t.Pods; p++ {
		if st.FreeInPod(p) >= nL {
			for l := 0; l < t.LeavesPerPod; l++ {
				if st.WholeLeafAvailable(t.LeafIndex(p, l), demand) {
					freeLeaves[p] = append(freeLeaves[p], l)
				}
			}
		}
		spine[p] = make([]uint64, t.L2PerPod)
		for i := 0; i < t.L2PerPod; i++ {
			spine[p][i] = st.SpineMask(p, i, demand)
		}
	}

	chosen := make([]int, 0, T)
	inUse := make([]bool, t.Pods)
	f := make([]uint64, t.L2PerPod) // running per-L2 spine intersection

	// tryRemainder completes the allocation given the chosen full pods and
	// intersection masks f.
	tryRemainder := func() (*partition.Partition, bool) {
		remPod, remLeaf := -1, -1
		var sr []int
		if hasRem {
		pods:
			for p := 0; p < t.Pods; p++ {
				if inUse[p] || len(freeLeaves[p]) < LrT {
					continue
				}
				// All L2 indices need LrT spines free in the remainder pod
				// within the (eventual) S*_i ⊆ f_i.
				for i := 0; i < t.L2PerPod; i++ {
					if bits.OnesCount64(f[i]&spine[p][i]) < LrT {
						continue pods
					}
				}
				if nrL == 0 {
					remPod = p
					break
				}
				// Find a remainder leaf: not one of the LrT full leaves,
				// with nrL free nodes, and at least nrL L2 indices i where
				// its uplink is free and f_i ∩ spine_i supports LrT+1.
				taken := map[int]bool{}
				for k := 0; k < LrT; k++ {
					taken[freeLeaves[p][k]] = true
				}
				for l := 0; l < t.LeavesPerPod; l++ {
					if taken[l] {
						continue
					}
					leafIdx := t.LeafIndex(p, l)
					if st.FreeInLeaf(leafIdx) < nrL {
						continue
					}
					up := st.LeafUpMask(leafIdx, demand)
					var cand []int
					for i := 0; i < t.L2PerPod && len(cand) < nrL; i++ {
						if up&(1<<i) != 0 && bits.OnesCount64(f[i]&spine[p][i]) >= LrT+1 {
							cand = append(cand, i)
						}
					}
					if len(cand) == nrL {
						remPod, remLeaf, sr = p, l, cand
						break pods
					}
				}
			}
			if remPod < 0 {
				return nil, false
			}
		}

		// Choose spine sets: S*_i takes the remainder tree's requirement
		// from f_i ∩ spine[remPod][i] first, then fills to LT from f_i.
		srMask := uint64(0)
		for _, i := range sr {
			srMask |= 1 << i
		}
		spineSet := make(map[int][]int, t.L2PerPod)
		var spineSetR map[int][]int
		if hasRem {
			spineSetR = make(map[int][]int, t.L2PerPod)
		}
		for i := 0; i < t.L2PerPod; i++ {
			if !hasRem {
				spineSet[i] = lowestBits(f[i], LT)
				continue
			}
			req := LrT
			if srMask&(1<<i) != 0 {
				req++
			}
			rsel := lowestBits(f[i]&spine[remPod][i], req)
			var rm uint64
			for _, s := range rsel {
				rm |= 1 << s
			}
			fill := lowestBits(f[i]&^rm, LT-req)
			all := append(append([]int{}, rsel...), fill...)
			sortInts(all)
			sortInts(rsel)
			spineSet[i] = all
			spineSetR[i] = rsel
		}

		s := make([]int, t.L2PerPod)
		for i := range s {
			s[i] = i
		}
		trees := make([]partition.TreeAlloc, 0, treesNeeded)
		for _, p := range chosen {
			leaves := make([]partition.LeafAlloc, 0, LT)
			for k := 0; k < LT; k++ {
				leaves = append(leaves, partition.LeafAlloc{Leaf: freeLeaves[p][k], N: nL})
			}
			trees = append(trees, partition.TreeAlloc{Pod: p, Leaves: leaves})
		}
		if hasRem {
			leaves := make([]partition.LeafAlloc, 0, LrT+1)
			for k := 0; k < LrT; k++ {
				leaves = append(leaves, partition.LeafAlloc{Leaf: freeLeaves[remPod][k], N: nL})
			}
			if nrL > 0 {
				leaves = append(leaves, partition.LeafAlloc{Leaf: remLeaf, N: nrL})
			}
			trees = append(trees, partition.TreeAlloc{Pod: remPod, Leaves: leaves, Remainder: true})
		}
		sortInts(sr)
		part := &partition.Partition{
			NL: nL, LT: LT, S: s, Sr: sr,
			SpineSet: spineSet, SpineSetR: spineSetR,
			Trees: trees,
		}
		if nrL == 0 {
			part.Sr = nil
		}
		return part, true
	}

	var rec func(start int) (*partition.Partition, bool)
	rec = func(start int) (*partition.Partition, bool) {
		if len(chosen) == T {
			return tryRemainder()
		}
		for p := start; p <= t.Pods-(T-len(chosen)); p++ {
			if len(freeLeaves[p]) < LT {
				continue
			}
			if *steps <= 0 {
				return nil, false
			}
			*steps--
			// Intersect spine masks; prune if any L2 drops below LT.
			var saved [64]uint64
			ok := true
			for i := 0; i < t.L2PerPod; i++ {
				saved[i] = f[i]
				f[i] &= spine[p][i]
				if bits.OnesCount64(f[i]) < LT {
					ok = false
				}
			}
			if ok {
				chosen = append(chosen, p)
				inUse[p] = true
				if part, found := rec(p + 1); found {
					return part, true
				}
				inUse[p] = false
				chosen = chosen[:len(chosen)-1]
			}
			for i := 0; i < t.L2PerPod; i++ {
				f[i] = saved[i]
			}
		}
		return nil, false
	}

	for i := range f {
		f[i] = t.HalfMask()
	}
	return rec(0)
}

// sortInts is a tiny insertion sort; index sets here have at most radix/2
// elements.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
