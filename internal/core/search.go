// Package core implements the Jigsaw allocation algorithm (Algorithm 1 of
// the paper): a backtracking search for node-and-link allocations satisfying
// the formal conditions of Section 3.2, restricted — for allocations that
// span three levels — to whole leaves (all nodes per leaf except a single
// remainder leaf). The restriction is what keeps the search fast and
// external fragmentation low (Section 4).
//
// The two search primitives, FindTwoLevel and FindThreeLevel, are exported
// because the LaaS comparison scheme (internal/laas) reuses them at
// whole-leaf granularity. Both run on a caller-supplied Scratch (nil for a
// throwaway one) and return partitions aliasing it; see the Scratch
// aliasing contract.
package core

import (
	"math/bits"

	"repro/internal/partition"
	"repro/internal/topology"
)

// FindTwoLevel searches one pod for a two-level allocation of LT leaves with
// nL nodes each plus an optional remainder leaf with nrL < nL nodes, such
// that the chosen full leaves share nL free uplinks to a common set S of L2
// switches and the remainder leaf has nrL free uplinks inside S (the
// conditions of Section 3.2 restricted to a single tree). Links must have
// residual capacity of at least demand. It returns the first partition
// found, scanning leaves in index order with exhaustive backtracking.
//
// The returned partition aliases sc (valid until sc's next search); pass a
// nil sc for a single-use scratch.
func FindTwoLevel(st *topology.State, demand int32, pod, LT, nL, nrL int, sc *Scratch) (*partition.Partition, bool) {
	t := st.Tree
	needLeaves := LT
	if nrL > 0 {
		needLeaves++
	}
	if LT < 1 || nL < 1 || nL > t.NodesPerLeaf || nrL >= nL || needLeaves > t.LeavesPerPod {
		return nil, false
	}
	// Pod-level counter skip: the LT full leaves need nL free nodes each and
	// the remainder leaf nrL more, all on distinct leaves of this pod.
	if st.FreeInPod(pod) < LT*nL+nrL {
		return nil, false
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(t)
	sc.st, sc.demand = st, demand
	sc.pod, sc.lt, sc.nl, sc.nrl = pod, LT, nL, nrL
	for l := 0; l < t.LeavesPerPod; l++ {
		leafIdx := t.LeafIndex(pod, l)
		sc.info[l] = leafInfo{up: st.LeafUpMask(leafIdx, demand), free: st.FreeInLeaf(leafIdx)}
	}
	sc.chosenL = sc.chosenL[:0]
	clear(sc.inUseL)
	return sc.twoRec(0, t.HalfMask())
}

// twoRec extends the chosen-leaf set with leaves from start onward, keeping
// the running uplink intersection m.
func (sc *Scratch) twoRec(start int, m uint64) (*partition.Partition, bool) {
	t := sc.tree
	if len(sc.chosenL) == sc.lt {
		return sc.twoFinish(m)
	}
	// Prune: not enough leaves left to reach LT.
	for l := start; l <= t.LeavesPerPod-(sc.lt-len(sc.chosenL)); l++ {
		if sc.info[l].free < sc.nl {
			continue
		}
		nm := m & sc.info[l].up
		if bits.OnesCount64(nm) < sc.nl {
			continue
		}
		sc.chosenL = append(sc.chosenL, l)
		sc.inUseL[l] = true
		if p, ok := sc.twoRec(l+1, nm); ok {
			return p, true
		}
		sc.inUseL[l] = false
		sc.chosenL = sc.chosenL[:len(sc.chosenL)-1]
	}
	return nil, false
}

// twoFinish tries to complete the two-level allocation once LT full leaves
// are chosen with common uplink mask m.
func (sc *Scratch) twoFinish(m uint64) (*partition.Partition, bool) {
	t := sc.tree
	remLeaf := -1
	if sc.nrl > 0 {
		var srMask uint64
		for l := 0; l < t.LeavesPerPod; l++ {
			if sc.inUseL[l] || sc.info[l].free < sc.nrl {
				continue
			}
			common := m & sc.info[l].up
			if bits.OnesCount64(common) < sc.nrl {
				continue
			}
			remLeaf = l
			sc.sr = appendLowestBits(sc.sr[:0], common, sc.nrl)
			srMask = 0
			for _, i := range sc.sr {
				srMask |= 1 << i
			}
			break
		}
		if remLeaf < 0 {
			return nil, false
		}
		sc.s = append(sc.s[:0], sc.sr...)
		sc.s = appendLowestBits(sc.s, m&^srMask, sc.nl-sc.nrl)
		sortInts(sc.s)
		sortInts(sc.sr)
	} else {
		sc.s = appendLowestBits(sc.s[:0], m, sc.nl)
	}

	sc.leafBuf = sc.leafBuf[:0]
	for _, l := range sc.chosenL {
		sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: l, N: sc.nl})
	}
	if remLeaf >= 0 {
		sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: remLeaf, N: sc.nrl})
	}
	sc.treeBuf = append(sc.treeBuf[:0], partition.TreeAlloc{Pod: sc.pod, Leaves: sc.leafBuf})
	sc.part = partition.Partition{NL: sc.nl, LT: sc.lt, S: sc.s, Trees: sc.treeBuf}
	if remLeaf >= 0 {
		sc.part.Sr = sc.sr
	}
	return &sc.part, true
}

// FindThreeLevel searches the machine for a whole-leaf three-level
// allocation: T full trees of LT completely-free leaves each, plus an
// optional remainder tree with LrT completely-free leaves and an optional
// remainder leaf with nrL nodes. Every full leaf uses all its uplinks, so
// the common L2 set S is the entire L2 level and what couples the trees is
// spine availability: each L2 index i needs a spine set S*_i of size LT free
// in every chosen full tree, with the remainder tree drawing its smaller
// subsets from S*_i. Links must have residual of at least demand.
//
// steps bounds the number of backtracking extensions explored (a guard
// against pathological states; Jigsaw's restriction keeps real searches tiny).
//
// The returned partition aliases sc (valid until sc's next search); pass a
// nil sc for a single-use scratch.
func FindThreeLevel(st *topology.State, demand int32, T, LT, LrT, nrL int, steps *int, sc *Scratch) (*partition.Partition, bool) {
	t := st.Tree
	nL := t.NodesPerLeaf
	treesNeeded := T
	hasRem := LrT > 0 || nrL > 0
	if hasRem {
		treesNeeded++
	}
	if T < 1 || LT < 1 || LT > t.LeavesPerPod || nrL >= nL || treesNeeded > t.Pods {
		return nil, false
	}
	if LrT*nL+nrL >= LT*nL {
		return nil, false // remainder tree must be strictly smaller
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(t)
	sc.st, sc.demand = st, demand
	sc.nTrees, sc.lt, sc.nl, sc.lrt, sc.nrl = T, LT, nL, LrT, nrL

	// Per-pod candidate information, read from the state's availability
	// indices: WholeLeafAvailable and SpineMask are O(1) for isolating
	// demands, and pods without a single whole-free leaf (per-pod free-node
	// counter below one leaf's worth) skip the leaf scan entirely.
	for p := 0; p < t.Pods; p++ {
		n := 0
		if st.FreeInPod(p) >= nL {
			base := p * t.LeavesPerPod
			for l := 0; l < t.LeavesPerPod; l++ {
				if st.WholeLeafAvailable(t.LeafIndex(p, l), demand) {
					sc.freeLeaves[base+n] = l
					n++
				}
			}
		}
		sc.nFree[p] = n
		sbase := p * t.L2PerPod
		for i := 0; i < t.L2PerPod; i++ {
			sc.spine[sbase+i] = st.SpineMask(p, i, demand)
		}
	}

	sc.chosenP = sc.chosenP[:0]
	clear(sc.inUseP)
	for i := range sc.f {
		sc.f[i] = t.HalfMask()
	}
	// The budget lives in sc for the duration of the search (storing the
	// caller's pointer would force its variable onto the heap).
	sc.steps = *steps
	p, ok := sc.threeRec(0)
	*steps = sc.steps
	return p, ok
}

// threeRec extends the chosen-pod set with pods from start onward,
// maintaining the per-L2 spine intersections in sc.f.
func (sc *Scratch) threeRec(start int) (*partition.Partition, bool) {
	t := sc.tree
	if len(sc.chosenP) == sc.nTrees {
		return sc.tryRemainder()
	}
	for p := start; p <= t.Pods-(sc.nTrees-len(sc.chosenP)); p++ {
		if sc.nFree[p] < sc.lt {
			continue
		}
		if sc.steps <= 0 {
			return nil, false
		}
		sc.steps--
		// Intersect spine masks; prune if any L2 drops below LT.
		var saved [64]uint64
		ok := true
		sbase := p * t.L2PerPod
		for i := 0; i < t.L2PerPod; i++ {
			saved[i] = sc.f[i]
			sc.f[i] &= sc.spine[sbase+i]
			if bits.OnesCount64(sc.f[i]) < sc.lt {
				ok = false
			}
		}
		if ok {
			sc.chosenP = append(sc.chosenP, p)
			sc.inUseP[p] = true
			if part, found := sc.threeRec(p + 1); found {
				return part, true
			}
			sc.inUseP[p] = false
			sc.chosenP = sc.chosenP[:len(sc.chosenP)-1]
		}
		for i := 0; i < t.L2PerPod; i++ {
			sc.f[i] = saved[i]
		}
	}
	return nil, false
}

// tryRemainder completes the three-level allocation given the chosen full
// pods and intersection masks sc.f.
func (sc *Scratch) tryRemainder() (*partition.Partition, bool) {
	t := sc.tree
	st := sc.st
	hasRem := sc.lrt > 0 || sc.nrl > 0
	remPod, remLeaf := -1, -1
	sc.sr = sc.sr[:0]
	if hasRem {
	pods:
		for p := 0; p < t.Pods; p++ {
			if sc.inUseP[p] || sc.nFree[p] < sc.lrt {
				continue
			}
			sbase := p * t.L2PerPod
			// All L2 indices need LrT spines free in the remainder pod
			// within the (eventual) S*_i ⊆ f_i.
			for i := 0; i < t.L2PerPod; i++ {
				if bits.OnesCount64(sc.f[i]&sc.spine[sbase+i]) < sc.lrt {
					continue pods
				}
			}
			if sc.nrl == 0 {
				remPod = p
				break
			}
			// Find a remainder leaf: not one of the LrT full leaves,
			// with nrL free nodes, and at least nrL L2 indices i where
			// its uplink is free and f_i ∩ spine_i supports LrT+1. The
			// full leaves are marked in a bitmask (within-pod leaf
			// indices never exceed 64 for any supported radix).
			var taken uint64
			base := p * t.LeavesPerPod
			for k := 0; k < sc.lrt; k++ {
				taken |= 1 << sc.freeLeaves[base+k]
			}
			for l := 0; l < t.LeavesPerPod; l++ {
				if taken&(1<<l) != 0 {
					continue
				}
				leafIdx := t.LeafIndex(p, l)
				if st.FreeInLeaf(leafIdx) < sc.nrl {
					continue
				}
				up := st.LeafUpMask(leafIdx, sc.demand)
				sc.sr = sc.sr[:0]
				for i := 0; i < t.L2PerPod && len(sc.sr) < sc.nrl; i++ {
					if up&(1<<i) != 0 && bits.OnesCount64(sc.f[i]&sc.spine[sbase+i]) >= sc.lrt+1 {
						sc.sr = append(sc.sr, i)
					}
				}
				if len(sc.sr) == sc.nrl {
					remPod, remLeaf = p, l
					break pods
				}
			}
		}
		if remPod < 0 {
			return nil, false
		}
	}

	// Choose spine sets: S*_i takes the remainder tree's requirement
	// from f_i ∩ spine[remPod][i] first, then fills to LT from f_i.
	srMask := uint64(0)
	for _, i := range sc.sr {
		srMask |= 1 << i
	}
	clear(sc.spineSet)
	clear(sc.spineSetR)
	sc.spineInts = sc.spineInts[:0]
	rbase := 0
	if remPod >= 0 {
		rbase = remPod * t.L2PerPod
	}
	for i := 0; i < t.L2PerPod; i++ {
		if !hasRem {
			start := len(sc.spineInts)
			sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i], sc.lt)
			sc.spineSet[i] = sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
			continue
		}
		req := sc.lrt
		if srMask&(1<<i) != 0 {
			req++
		}
		start := len(sc.spineInts)
		sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i]&sc.spine[rbase+i], req)
		rsel := sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
		var rm uint64
		for _, s := range rsel {
			rm |= 1 << s
		}
		start = len(sc.spineInts)
		sc.spineInts = append(sc.spineInts, rsel...)
		sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i]&^rm, sc.lt-req)
		all := sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
		sortInts(all)
		sortInts(rsel)
		sc.spineSet[i] = all
		sc.spineSetR[i] = rsel
	}

	sc.s = sc.s[:0]
	for i := 0; i < t.L2PerPod; i++ {
		sc.s = append(sc.s, i)
	}
	sc.leafBuf = sc.leafBuf[:0]
	sc.treeBuf = sc.treeBuf[:0]
	for _, p := range sc.chosenP {
		start := len(sc.leafBuf)
		base := p * t.LeavesPerPod
		for k := 0; k < sc.lt; k++ {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: sc.freeLeaves[base+k], N: sc.nl})
		}
		sc.treeBuf = append(sc.treeBuf, partition.TreeAlloc{
			Pod: p, Leaves: sc.leafBuf[start:len(sc.leafBuf):len(sc.leafBuf)],
		})
	}
	if hasRem {
		start := len(sc.leafBuf)
		base := remPod * t.LeavesPerPod
		for k := 0; k < sc.lrt; k++ {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: sc.freeLeaves[base+k], N: sc.nl})
		}
		if sc.nrl > 0 {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: remLeaf, N: sc.nrl})
		}
		sc.treeBuf = append(sc.treeBuf, partition.TreeAlloc{
			Pod: remPod, Leaves: sc.leafBuf[start:len(sc.leafBuf):len(sc.leafBuf)], Remainder: true,
		})
	}
	sortInts(sc.sr)
	sc.part = partition.Partition{
		NL: sc.nl, LT: sc.lt, S: sc.s, Sr: sc.sr,
		SpineSet: sc.spineSet, SpineSetR: sc.spineSetR,
		Trees: sc.treeBuf,
	}
	if sc.nrl == 0 {
		sc.part.Sr = nil
	}
	if !hasRem {
		sc.part.SpineSetR = nil
	}
	return &sc.part, true
}

// sortInts is a tiny insertion sort; index sets here have at most radix/2
// elements.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
