// Package core implements the Jigsaw allocation algorithm (Algorithm 1 of
// the paper): a backtracking search for node-and-link allocations satisfying
// the formal conditions of Section 3.2, restricted — for allocations that
// span three levels — to whole leaves (all nodes per leaf except a single
// remainder leaf). The restriction is what keeps the search fast and
// external fragmentation low (Section 4).
//
// The two search primitives, FindTwoLevel and FindThreeLevel, are exported
// because the LaaS comparison scheme (internal/laas) reuses them at
// whole-leaf granularity. Both run on a caller-supplied Scratch (nil for a
// throwaway one) and return partitions aliasing it; see the Scratch
// aliasing contract.
//
// Both primitives prune with the subtree-infeasibility bounds of DESIGN.md
// §15: per-pod and cross-pod summaries cached on the Scratch (summaries.go)
// reject pods and whole factorizations that provably cannot host the
// requested shape before any backtracking happens, and suffix-count cutoffs
// truncate the recursions early. Every bound is a necessary condition for a
// solution to exist, so pruning never changes which partition a search finds
// — only how fast a miss is proven (FuzzSearchPruned pins this).
package core

import (
	"math"
	"math/bits"

	"repro/internal/partition"
	"repro/internal/topology"
)

// noBudget is the step budget used when the caller passes a nil budget
// pointer: large enough to never exhaust, so the search is effectively
// unbudgeted.
const noBudget = math.MaxInt

// FindTwoLevel searches one pod for a two-level allocation of LT leaves with
// nL nodes each plus an optional remainder leaf with nrL < nL nodes, such
// that the chosen full leaves share nL free uplinks to a common set S of L2
// switches and the remainder leaf has nrL free uplinks inside S (the
// conditions of Section 3.2 restricted to a single tree). Links must have
// residual capacity of at least demand. It returns the first partition
// found, scanning leaves in index order with exhaustive backtracking.
//
// steps, when non-nil, is the remaining whole-search step budget: each
// backtracking extension consumes one step, the remainder is written back,
// and the search gives up (without concluding infeasibility) when the budget
// hits zero. A nil steps runs unbudgeted.
//
// The returned partition aliases sc (valid until sc's next search); pass a
// nil sc for a single-use scratch.
func FindTwoLevel(st *topology.State, demand int32, pod, LT, nL, nrL int, steps *int, sc *Scratch) (*partition.Partition, bool) {
	t := st.Tree
	needLeaves := LT
	if nrL > 0 {
		needLeaves++
	}
	if LT < 1 || nL < 1 || nL > t.NodesPerLeaf || nrL >= nL || needLeaves > t.LeavesPerPod {
		return nil, false
	}
	// Pod-level counter skip: the LT full leaves need nL free nodes each and
	// the remainder leaf nrL more, all on distinct leaves of this pod.
	if st.FreeInPod(pod) < LT*nL+nrL {
		return nil, false
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(t)
	sc.syncEpoch(st, demand)
	sc.ensurePod(pod)
	base := pod * t.LeavesPerPod
	var elig uint64
	if sc.noBounds {
		for l := 0; l < t.LeavesPerPod; l++ {
			if sc.lfFree[base+l] >= int32(nL) {
				elig |= 1 << l
			}
		}
	} else {
		// Admissibility bounds (DESIGN.md §15): the pod must hold LT leaves
		// of width >= nL, plus one more of width >= nrL for the remainder.
		hist := sc.capHist[pod*(t.NodesPerLeaf+2):]
		if hist[nL] < int32(LT) {
			return nil, false
		}
		if nrL > 0 && hist[nrL] < int32(LT+1) {
			return nil, false
		}
		// A leaf of width < nL can never join the full set: it would fail
		// the intersection-popcount check against any running mask.
		for l := 0; l < t.LeavesPerPod; l++ {
			if sc.lfCap[base+l] >= int32(nL) {
				elig |= 1 << l
			}
		}
	}
	sc.pod, sc.lt, sc.nl, sc.nrl = pod, LT, nL, nrL
	sc.elig = elig
	sc.chosenL = sc.chosenL[:0]
	clear(sc.inUseL)
	sc.steps = noBudget
	if steps != nil {
		sc.steps = *steps
	}
	p, ok := sc.twoRec(0, t.HalfMask())
	if steps != nil {
		*steps = sc.steps
	}
	return p, ok
}

// twoRec extends the chosen-leaf set with eligible leaves from start onward,
// keeping the running uplink intersection m.
func (sc *Scratch) twoRec(start int, m uint64) (*partition.Partition, bool) {
	t := sc.tree
	if len(sc.chosenL) == sc.lt {
		return sc.twoFinish(m)
	}
	need := sc.lt - len(sc.chosenL)
	base := sc.pod * t.LeavesPerPod
	// Eligible leaves at index >= start (a shift of 64 or more yields 0, so
	// start == 64 correctly leaves nothing).
	avail := sc.elig &^ (uint64(1)<<uint(start) - 1)
	for avail != 0 {
		l := bits.TrailingZeros64(avail)
		if l > t.LeavesPerPod-need {
			break // not enough leaves left to reach LT
		}
		if !sc.noBounds && bits.OnesCount64(avail) < need {
			break // cutoff: fewer eligible leaves remain than the set needs
		}
		avail &= avail - 1
		nm := m & sc.lfUp[base+l]
		if bits.OnesCount64(nm) < sc.nl {
			continue
		}
		if sc.steps <= 0 {
			return nil, false
		}
		sc.steps--
		sc.chosenL = append(sc.chosenL, l)
		sc.inUseL[l] = true
		if p, ok := sc.twoRec(l+1, nm); ok {
			return p, true
		}
		sc.inUseL[l] = false
		sc.chosenL = sc.chosenL[:len(sc.chosenL)-1]
	}
	return nil, false
}

// twoFinish tries to complete the two-level allocation once LT full leaves
// are chosen with common uplink mask m.
func (sc *Scratch) twoFinish(m uint64) (*partition.Partition, bool) {
	t := sc.tree
	base := sc.pod * t.LeavesPerPod
	remLeaf := -1
	if sc.nrl > 0 {
		var srMask uint64
		for l := 0; l < t.LeavesPerPod; l++ {
			if sc.inUseL[l] || sc.lfFree[base+l] < int32(sc.nrl) {
				continue
			}
			common := m & sc.lfUp[base+l]
			if bits.OnesCount64(common) < sc.nrl {
				continue
			}
			remLeaf = l
			sc.sr = appendLowestBits(sc.sr[:0], common, sc.nrl)
			srMask = 0
			for _, i := range sc.sr {
				srMask |= 1 << i
			}
			break
		}
		if remLeaf < 0 {
			return nil, false
		}
		sc.s = append(sc.s[:0], sc.sr...)
		sc.s = appendLowestBits(sc.s, m&^srMask, sc.nl-sc.nrl)
		sortInts(sc.s)
		sortInts(sc.sr)
	} else {
		sc.s = appendLowestBits(sc.s[:0], m, sc.nl)
	}

	sc.leafBuf = sc.leafBuf[:0]
	for _, l := range sc.chosenL {
		sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: l, N: sc.nl})
	}
	if remLeaf >= 0 {
		sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: remLeaf, N: sc.nrl})
	}
	sc.treeBuf = append(sc.treeBuf[:0], partition.TreeAlloc{Pod: sc.pod, Leaves: sc.leafBuf})
	sc.part = partition.Partition{NL: sc.nl, LT: sc.lt, S: sc.s, Trees: sc.treeBuf}
	if remLeaf >= 0 {
		sc.part.Sr = sc.sr
	}
	return &sc.part, true
}

// FindThreeLevel searches the machine for a whole-leaf three-level
// allocation: T full trees of LT completely-free leaves each, plus an
// optional remainder tree with LrT completely-free leaves and an optional
// remainder leaf with nrL nodes. Every full leaf uses all its uplinks, so
// the common L2 set S is the entire L2 level and what couples the trees is
// spine availability: each L2 index i needs a spine set S*_i of size LT free
// in every chosen full tree, with the remainder tree drawing its smaller
// subsets from S*_i. Links must have residual of at least demand.
//
// steps is the remaining whole-search step budget: each backtracking
// extension consumes one step, the remainder is written back, and the search
// gives up (without concluding infeasibility) when the budget hits zero.
//
// The returned partition aliases sc (valid until sc's next search); pass a
// nil sc for a single-use scratch.
func FindThreeLevel(st *topology.State, demand int32, T, LT, LrT, nrL int, steps *int, sc *Scratch) (*partition.Partition, bool) {
	t := st.Tree
	nL := t.NodesPerLeaf
	treesNeeded := T
	hasRem := LrT > 0 || nrL > 0
	if hasRem {
		treesNeeded++
	}
	if T < 1 || LT < 1 || LT > t.LeavesPerPod || nrL >= nL || treesNeeded > t.Pods {
		return nil, false
	}
	if LrT*nL+nrL >= LT*nL {
		return nil, false // remainder tree must be strictly smaller
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.ensure(t)
	sc.syncEpoch(st, demand)
	for p := 0; p < t.Pods; p++ {
		sc.ensurePod(p)
	}
	sc.nTrees, sc.lt, sc.nl, sc.lrt, sc.nrl = T, LT, nL, LrT, nrL

	if !sc.noBounds {
		sc.ensureAggregates()
		// Factorization bounds (DESIGN.md §15): T pods with LT whole-free
		// leaves (one more with LrT for the remainder tree), and at every L2
		// index enough pods whose spine group still has LT (resp. LrT) free
		// spines — all necessary conditions read off the epoch histograms.
		if sc.nFreeHist[LT] < int32(T) {
			return nil, false
		}
		if LrT > 0 && sc.nFreeHist[LrT] < int32(T+1) {
			return nil, false
		}
		spg := t.SpinesPerGroup + 2
		for i := 0; i < t.L2PerPod; i++ {
			if sc.spinePopCnt[i*spg+LT] < int32(T) {
				return nil, false
			}
			if LrT > 0 && sc.spinePopCnt[i*spg+LrT] < int32(T+1) {
				return nil, false
			}
		}
	}

	// Pod eligibility for the full-tree recursion, with suffix counts for
	// the branch-and-bound cutoff. A pod whose minimum spine popcount is
	// below LT would fail the intersection check on every L2 pass, so the
	// pruned search rejects it here, once, for all factorizations of this
	// epoch that reach it.
	sc.podEligTail[t.Pods] = 0
	for p := t.Pods - 1; p >= 0; p-- {
		ok := sc.nFree[p] >= LT
		if !sc.noBounds && sc.minSpinePop[p] < int32(LT) {
			ok = false
		}
		sc.podOK[p] = ok
		cnt := sc.podEligTail[p+1]
		if ok {
			cnt++
		}
		sc.podEligTail[p] = cnt
	}
	if !sc.noBounds && sc.podEligTail[0] < int32(T) {
		return nil, false
	}

	sc.chosenP = sc.chosenP[:0]
	clear(sc.inUseP)
	for i := range sc.f {
		sc.f[i] = t.HalfMask()
	}
	// The budget lives in sc for the duration of the search (storing the
	// caller's pointer would force its variable onto the heap).
	sc.steps = *steps
	p, ok := sc.threeRec(0)
	*steps = sc.steps
	return p, ok
}

// threeRec extends the chosen-pod set with pods from start onward,
// maintaining the per-L2 spine intersections in sc.f.
func (sc *Scratch) threeRec(start int) (*partition.Partition, bool) {
	t := sc.tree
	if len(sc.chosenP) == sc.nTrees {
		return sc.tryRemainder()
	}
	need := sc.nTrees - len(sc.chosenP)
	for p := start; p <= t.Pods-need; p++ {
		if !sc.noBounds && sc.podEligTail[p] < int32(need) {
			break // cutoff: fewer eligible pods remain than the set needs
		}
		if !sc.podOK[p] {
			continue
		}
		if sc.steps <= 0 {
			return nil, false
		}
		sc.steps--
		// Intersect spine masks; prune if any L2 drops below LT.
		var saved [64]uint64
		ok := true
		sbase := p * t.L2PerPod
		for i := 0; i < t.L2PerPod; i++ {
			saved[i] = sc.f[i]
			sc.f[i] &= sc.spine[sbase+i]
			if bits.OnesCount64(sc.f[i]) < sc.lt {
				ok = false
			}
		}
		if ok {
			sc.chosenP = append(sc.chosenP, p)
			sc.inUseP[p] = true
			if part, found := sc.threeRec(p + 1); found {
				return part, true
			}
			sc.inUseP[p] = false
			sc.chosenP = sc.chosenP[:len(sc.chosenP)-1]
		}
		for i := 0; i < t.L2PerPod; i++ {
			sc.f[i] = saved[i]
		}
	}
	return nil, false
}

// tryRemainder completes the three-level allocation given the chosen full
// pods and intersection masks sc.f.
func (sc *Scratch) tryRemainder() (*partition.Partition, bool) {
	t := sc.tree
	hasRem := sc.lrt > 0 || sc.nrl > 0
	remPod, remLeaf := -1, -1
	sc.sr = sc.sr[:0]
	if hasRem {
	pods:
		for p := 0; p < t.Pods; p++ {
			if sc.inUseP[p] || sc.nFree[p] < sc.lrt {
				continue
			}
			// Prune: a remainder pod whose own spine groups cannot supply
			// LrT spines at some L2 index fails the loop below regardless
			// of the intersection.
			if !sc.noBounds && sc.minSpinePop[p] < int32(sc.lrt) {
				continue
			}
			sbase := p * t.L2PerPod
			// All L2 indices need LrT spines free in the remainder pod
			// within the (eventual) S*_i ⊆ f_i.
			for i := 0; i < t.L2PerPod; i++ {
				if bits.OnesCount64(sc.f[i]&sc.spine[sbase+i]) < sc.lrt {
					continue pods
				}
			}
			if sc.nrl == 0 {
				remPod = p
				break
			}
			// Find a remainder leaf: not one of the LrT full leaves,
			// with nrL free nodes, and at least nrL L2 indices i where
			// its uplink is free and f_i ∩ spine_i supports LrT+1. The
			// full leaves are marked in a bitmask (within-pod leaf
			// indices never exceed 64 for any supported radix).
			var taken uint64
			base := p * t.LeavesPerPod
			for k := 0; k < sc.lrt; k++ {
				taken |= 1 << sc.freeLeaves[base+k]
			}
			for l := 0; l < t.LeavesPerPod; l++ {
				if taken&(1<<l) != 0 {
					continue
				}
				if sc.lfFree[base+l] < int32(sc.nrl) {
					continue
				}
				up := sc.lfUp[base+l]
				sc.sr = sc.sr[:0]
				for i := 0; i < t.L2PerPod && len(sc.sr) < sc.nrl; i++ {
					if up&(1<<i) != 0 && bits.OnesCount64(sc.f[i]&sc.spine[sbase+i]) >= sc.lrt+1 {
						sc.sr = append(sc.sr, i)
					}
				}
				if len(sc.sr) == sc.nrl {
					remPod, remLeaf = p, l
					break pods
				}
			}
		}
		if remPod < 0 {
			return nil, false
		}
	}

	// Choose spine sets: S*_i takes the remainder tree's requirement
	// from f_i ∩ spine[remPod][i] first, then fills to LT from f_i.
	srMask := uint64(0)
	for _, i := range sc.sr {
		srMask |= 1 << i
	}
	clear(sc.spineSet)
	clear(sc.spineSetR)
	sc.spineInts = sc.spineInts[:0]
	rbase := 0
	if remPod >= 0 {
		rbase = remPod * t.L2PerPod
	}
	for i := 0; i < t.L2PerPod; i++ {
		if !hasRem {
			start := len(sc.spineInts)
			sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i], sc.lt)
			sc.spineSet[i] = sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
			continue
		}
		req := sc.lrt
		if srMask&(1<<i) != 0 {
			req++
		}
		start := len(sc.spineInts)
		sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i]&sc.spine[rbase+i], req)
		rsel := sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
		var rm uint64
		for _, s := range rsel {
			rm |= 1 << s
		}
		start = len(sc.spineInts)
		sc.spineInts = append(sc.spineInts, rsel...)
		sc.spineInts = appendLowestBits(sc.spineInts, sc.f[i]&^rm, sc.lt-req)
		all := sc.spineInts[start:len(sc.spineInts):len(sc.spineInts)]
		sortInts(all)
		sortInts(rsel)
		sc.spineSet[i] = all
		sc.spineSetR[i] = rsel
	}

	sc.s = sc.s[:0]
	for i := 0; i < t.L2PerPod; i++ {
		sc.s = append(sc.s, i)
	}
	sc.leafBuf = sc.leafBuf[:0]
	sc.treeBuf = sc.treeBuf[:0]
	for _, p := range sc.chosenP {
		start := len(sc.leafBuf)
		base := p * t.LeavesPerPod
		for k := 0; k < sc.lt; k++ {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: sc.freeLeaves[base+k], N: sc.nl})
		}
		sc.treeBuf = append(sc.treeBuf, partition.TreeAlloc{
			Pod: p, Leaves: sc.leafBuf[start:len(sc.leafBuf):len(sc.leafBuf)],
		})
	}
	if hasRem {
		start := len(sc.leafBuf)
		base := remPod * t.LeavesPerPod
		for k := 0; k < sc.lrt; k++ {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: sc.freeLeaves[base+k], N: sc.nl})
		}
		if sc.nrl > 0 {
			sc.leafBuf = append(sc.leafBuf, partition.LeafAlloc{Leaf: remLeaf, N: sc.nrl})
		}
		sc.treeBuf = append(sc.treeBuf, partition.TreeAlloc{
			Pod: remPod, Leaves: sc.leafBuf[start:len(sc.leafBuf):len(sc.leafBuf)], Remainder: true,
		})
	}
	sortInts(sc.sr)
	sc.part = partition.Partition{
		NL: sc.nl, LT: sc.lt, S: sc.s, Sr: sc.sr,
		SpineSet: sc.spineSet, SpineSetR: sc.spineSetR,
		Trees: sc.treeBuf,
	}
	if sc.nrl == 0 {
		sc.part.Sr = nil
	}
	if !hasRem {
		sc.part.SpineSetR = nil
	}
	return &sc.part, true
}

// sortInts is a tiny insertion sort; index sets here have at most radix/2
// elements.
func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
