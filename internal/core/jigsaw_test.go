package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func TestAllocateEveryFeasibleSizeOnEmptyMachine(t *testing.T) {
	for _, radix := range []int{4, 6, 8} {
		tree := topology.MustNew(radix)
		for size := 1; size <= tree.Nodes(); size++ {
			a := NewAllocator(tree)
			p, ok := a.FindPartition(size)
			if !ok {
				t.Fatalf("radix %d: no partition for size %d on empty machine", radix, size)
			}
			if p.Size() != size {
				t.Fatalf("radix %d size %d: partition has %d nodes (no over-allocation allowed)", radix, size, p.Size())
			}
			if err := p.Verify(tree); err != nil {
				t.Fatalf("radix %d size %d: illegal partition: %v", radix, size, err)
			}
		}
	}
}

func TestAllocateChargesState(t *testing.T) {
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	pl, ok := a.Allocate(1, 11)
	if !ok {
		t.Fatal("allocation failed")
	}
	if a.FreeNodes() != tree.Nodes()-11 {
		t.Fatalf("free = %d", a.FreeNodes())
	}
	a.Release(pl)
	if a.FreeNodes() != tree.Nodes() {
		t.Fatal("release failed")
	}
}

func TestFigure3Shape(t *testing.T) {
	// On a radix-8 tree whose pods are partially occupied so that no
	// two-level placement exists, an 11-node job must produce the paper's
	// Figure 3 shape: T full trees plus a remainder tree.
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	// Occupy 13 of 16 nodes in every pod (spread over all leaves) so no
	// single pod can host 11 nodes.
	for pod := 0; pod < tree.Pods; pod++ {
		if _, ok := a.Allocate(topology.JobID(pod+1), 13); !ok {
			t.Fatalf("setup allocation failed in pod-sized step %d", pod)
		}
	}
	if _, ok := a.FindPartition(11); ok {
		t.Fatal("11 nodes should not fit with 3 free per pod and no full leaves")
	}
}

func TestThreeLevelAllocationUsed(t *testing.T) {
	tree := topology.MustNew(8) // 4 nodes/leaf, 16/pod, 8 pods
	a := NewAllocator(tree)
	// A job larger than a pod must span trees.
	p, ok := a.FindPartition(40)
	if !ok {
		t.Fatal("40-node job should fit on the empty machine")
	}
	if !p.MultiTree() {
		t.Fatal("40 > pod size: must be multi-tree")
	}
	if err := p.Verify(tree); err != nil {
		t.Fatal(err)
	}
	// Whole-leaf restriction: all non-remainder leaves are full.
	for _, tr := range p.Trees {
		for li, lf := range tr.Leaves {
			last := li == len(tr.Leaves)-1
			if lf.N != tree.NodesPerLeaf && !(tr.Remainder && last) {
				t.Fatalf("whole-leaf restriction violated: leaf with %d nodes", lf.N)
			}
		}
	}
}

func TestTwoLevelPreferred(t *testing.T) {
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	p, ok := a.FindPartition(10)
	if !ok {
		t.Fatal("allocation failed")
	}
	if p.MultiTree() {
		t.Fatal("a job fitting one pod must get a single-subtree allocation")
	}
}

func TestFlexibleSpreadBeatsSingleLeafConstraint(t *testing.T) {
	// The paper's key TA comparison: a small job that does not fit in any
	// single leaf can still be placed by Jigsaw across leaves.
	tree := topology.MustNew(8) // 4 nodes per leaf
	a := NewAllocator(tree)
	// Occupy 2 nodes on every leaf of pod 0..7 via 2-node jobs.
	id := topology.JobID(1)
	for pod := 0; pod < tree.Pods; pod++ {
		for leaf := 0; leaf < tree.LeavesPerPod; leaf++ {
			if _, ok := a.Allocate(id, 2); !ok {
				t.Fatal("setup failed")
			}
			id++
		}
	}
	// No leaf has 3 free nodes, but 3 nodes spread across leaves is legal.
	p, ok := a.FindPartition(3)
	if !ok {
		t.Fatal("Jigsaw should place 3 nodes across leaves")
	}
	if err := p.Verify(tree); err != nil {
		t.Fatal(err)
	}
}

func TestIsolationNoSharedLinks(t *testing.T) {
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	rng := rand.New(rand.NewSource(7))
	var placements []*topology.Placement
	for j := 1; j <= 30; j++ {
		size := 1 + rng.Intn(20)
		if pl, ok := a.Allocate(topology.JobID(j), size); ok {
			placements = append(placements, pl)
		}
	}
	// Residual-capacity accounting in State panics on double allocation, so
	// reaching here with successful release means no link was shared.
	for _, pl := range placements {
		a.Release(pl)
	}
	if a.FreeNodes() != tree.Nodes() {
		t.Fatal("leak after release")
	}
}

// Property: under a random allocate/release workload every returned
// partition satisfies the formal conditions, is exactly the requested size,
// and never over-subscribes links.
func TestQuickRandomWorkloadLegal(t *testing.T) {
	tree := topology.MustNew(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAllocator(tree)
		type live struct {
			pl *topology.Placement
		}
		var l []live
		for step := 0; step < 60; step++ {
			if len(l) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(l))
				a.Release(l[i].pl)
				l = append(l[:i], l[i+1:]...)
				continue
			}
			size := 1 + rng.Intn(tree.PodNodes()+4)
			p, ok := a.FindPartition(size)
			if !ok {
				continue
			}
			if p.Size() != size || p.Verify(tree) != nil {
				return false
			}
			pl := p.Placement(tree, topology.JobID(step+1), 1)
			pl.Apply(a.State())
			l = append(l, live{pl})
		}
		for _, e := range l {
			a.Release(e.pl)
		}
		return a.FreeNodes() == tree.Nodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsIndependent(t *testing.T) {
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	a.Allocate(1, 10)
	c := a.Clone()
	c.Allocate(2, 10)
	if a.FreeNodes() != tree.Nodes()-10 {
		t.Fatal("clone allocation leaked into original")
	}
	if c.FreeNodes() != tree.Nodes()-20 {
		t.Fatal("clone allocation missing")
	}
}

func TestRejectsInfeasibleSizes(t *testing.T) {
	tree := topology.MustNew(8)
	a := NewAllocator(tree)
	if _, ok := a.FindPartition(0); ok {
		t.Fatal("size 0 must fail")
	}
	if _, ok := a.FindPartition(tree.Nodes() + 1); ok {
		t.Fatal("oversized job must fail")
	}
	if _, ok := a.FindPartition(tree.Nodes()); !ok {
		t.Fatal("whole-machine job must fit on the empty machine")
	}
}
