package core

import (
	"math/bits"

	"repro/internal/topology"
)

// This file maintains the Scratch's per-epoch machine summaries: the per-pod
// and per-leaf availability views the search kernels read instead of
// re-querying the state for every (nL, pod) factorization, plus the
// histograms behind the admissibility bounds of DESIGN.md §15.
//
// An epoch is one (state, state version, demand) triple. The state's version
// counter is bumped by every mutator — including rollbacks, which replay
// through mutators and land on fresh values — so "same pointer, same
// version" certifies that every availability index reads exactly as it did
// when the summaries were computed. Pods are summarized lazily (podStamp)
// because the common two-level hit touches one pod; the three-level pass
// summarizes all pods and then folds them into cross-pod aggregates
// (aggStamp) once per epoch.

// syncEpoch starts a new epoch if the cached summaries do not describe
// (st, st.Version(), demand); otherwise it keeps the current one.
func (sc *Scratch) syncEpoch(st *topology.State, demand int32) {
	if sc.sumSt == st && sc.sumVer == st.Version() && sc.sumDemand == demand {
		return
	}
	sc.sumSt, sc.sumVer, sc.sumDemand = st, st.Version(), demand
	sc.epoch++
	if sc.epoch == 0 {
		// The 32-bit epoch wrapped: stale stamps from 4 billion epochs ago
		// would read as current, so reset them all.
		clear(sc.podStamp)
		sc.aggStamp = 0
		sc.epoch = 1
	}
}

// ensurePod computes pod p's summaries for the current epoch if they are
// stale: leaf free counts, uplink masks, widths, the pod's width histogram,
// its whole-leaf list, its spine masks, and its minimum spine popcount.
// One O(LeavesPerPod + L2PerPod) scan per pod per epoch replaces the same
// scan per factorization.
func (sc *Scratch) ensurePod(p int) {
	if sc.podStamp[p] == sc.epoch {
		return
	}
	sc.podStamp[p] = sc.epoch
	t, st, demand := sc.tree, sc.sumSt, sc.sumDemand
	npl := int32(t.NodesPerLeaf)
	full := t.HalfMask()
	base := p * t.LeavesPerPod
	hist := sc.capHist[p*(t.NodesPerLeaf+2) : (p+1)*(t.NodesPerLeaf+2)]
	clear(hist)
	n := 0
	for l := 0; l < t.LeavesPerPod; l++ {
		free := int32(st.FreeInLeaf(base + l))
		up := st.LeafUpMask(base+l, demand)
		sc.lfFree[base+l] = free
		sc.lfUp[base+l] = up
		c := int32(bits.OnesCount64(up))
		if free < c {
			c = free
		}
		sc.lfCap[base+l] = c
		hist[c]++
		// Whole-leaf availability: every node free and every uplink carrying
		// at least the demand (up == full ⟺ state.WholeLeafAvailable).
		if free == npl && up == full {
			sc.freeLeaves[base+n] = l
			n++
		}
	}
	sc.nFree[p] = n
	// Suffix-sum the width histogram so hist[n] counts leaves of width >= n.
	for c := t.NodesPerLeaf; c >= 0; c-- {
		hist[c] += hist[c+1]
	}
	sbase := p * t.L2PerPod
	minPop := int32(t.SpinesPerGroup + 1)
	for i := 0; i < t.L2PerPod; i++ {
		m := st.SpineMask(p, i, demand)
		sc.spine[sbase+i] = m
		if pc := int32(bits.OnesCount64(m)); pc < minPop {
			minPop = pc
		}
	}
	sc.minSpinePop[p] = minPop
}

// ensureAggregates folds the per-pod summaries into the cross-pod histograms
// the three-level factorization bounds read: nFreeHist[n] counts pods with at
// least n whole-free leaves, and spinePopCnt[i][c] counts pods whose L2 index
// i has at least c free spines. Every pod must be summarized first.
func (sc *Scratch) ensureAggregates() {
	if sc.aggStamp == sc.epoch {
		return
	}
	sc.aggStamp = sc.epoch
	t := sc.tree
	clear(sc.nFreeHist)
	for p := 0; p < t.Pods; p++ {
		sc.nFreeHist[sc.nFree[p]]++
	}
	for n := t.LeavesPerPod; n >= 0; n-- {
		sc.nFreeHist[n] += sc.nFreeHist[n+1]
	}
	spg := t.SpinesPerGroup + 2
	clear(sc.spinePopCnt)
	for p := 0; p < t.Pods; p++ {
		sbase := p * t.L2PerPod
		for i := 0; i < t.L2PerPod; i++ {
			c := bits.OnesCount64(sc.spine[sbase+i])
			sc.spinePopCnt[i*spg+c]++
		}
	}
	for i := 0; i < t.L2PerPod; i++ {
		cnt := sc.spinePopCnt[i*spg : (i+1)*spg]
		for c := t.SpinesPerGroup; c >= 0; c-- {
			cnt[c] += cnt[c+1]
		}
	}
}
