package core

import (
	"reflect"
	"testing"

	"repro/internal/topology"
)

// These tests are white-box on purpose: they reach the unexported noBounds
// switch (the faithful unpruned reference search) and the unexported search
// function that reports how many budget steps a whole search consumed.

// byteFeed turns a fuzz byte string into a stream of small non-negative
// ints; an exhausted feed yields zeros.
type byteFeed struct {
	data []byte
	i    int
}

func (f *byteFeed) next() int {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return int(b)
}

// buildFuzzState constructs a randomized state: a tree of fuzz-chosen radix
// and link capacity, random per-leaf occupancy, random failures (nodes,
// links, switches), and a few real allocations charged through the search
// itself so link residuals carry realistic patterns. Returns the state and
// the link capacity.
func buildFuzzState(t *testing.T, fd *byteFeed) (*topology.State, int32) {
	radix := []int{4, 8, 16}[fd.next()%3]
	tree := topology.MustNew(radix)
	capacity := int32(1 + fd.next()%3)
	st := topology.NewState(tree, capacity)

	// Random occupancy: take some nodes on random leaves.
	for j, n := 0, fd.next()%5; j < n; j++ {
		leaf := fd.next() % tree.Leaves()
		take := fd.next() % (tree.NodesPerLeaf + 1)
		if free := st.FreeInLeaf(leaf); take > free {
			take = free
		}
		if take == 0 {
			continue
		}
		pl := topology.NewPlacement(topology.JobID(100+j), 1)
		pl.AddLeafNodes(leaf, take)
		pl.Apply(st)
	}

	// Random degradation; errors (already failed, occupied) are fine.
	for j, n := 0, fd.next()%5; j < n; j++ {
		switch fd.next() % 5 {
		case 0:
			_ = st.FailNode(topology.NodeID(fd.next() % tree.Nodes()))
		case 1:
			_ = st.FailLeafUplink(fd.next()%tree.Leaves(), fd.next()%tree.L2PerPod)
		case 2:
			_ = st.FailSpineUplink(fd.next()%tree.Pods, fd.next()%tree.L2PerPod, fd.next()%tree.SpinesPerGroup)
		case 3:
			_ = st.FailLeafSwitch(fd.next() % tree.Leaves())
		case 4:
			_ = st.FailL2Switch(fd.next()%tree.Pods, fd.next()%tree.L2PerPod)
		}
	}

	// A few real allocations (any partition the search returns is legal to
	// charge, whichever search variant produced it).
	for j, n := 0, fd.next()%3; j < n; j++ {
		demand := int32(1 + fd.next()%int(capacity))
		size := 1 + fd.next()%tree.Nodes()
		if p, ok := Search(st, demand, size, fd.next()%2 == 0, DefaultSearchBudget, nil); ok {
			pl := p.Placement(tree, topology.JobID(200+j), demand)
			pl.Apply(st)
		}
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("fuzz state construction broke invariants: %v", err)
	}
	return st, capacity
}

// checkPrunedMatchesUnpruned runs a handful of fuzz-chosen searches against
// st with the pruned search (shared scratch, exercising the epoch cache) and
// the unpruned reference (fresh noBounds scratch each time) and requires
// identical outcomes: same hit/miss verdict and, on a hit, the same
// partition bit for bit.
func checkPrunedMatchesUnpruned(t *testing.T, st *topology.State, capacity int32, fd *byteFeed) {
	tree := st.Tree
	pruned := &Scratch{}
	for trial := 0; trial < 4; trial++ {
		demand := int32(1 + fd.next()%int(capacity))
		size := 1 + fd.next()%tree.Nodes()
		sparse := fd.next()%2 == 0

		p1, ok1 := Search(st, demand, size, sparse, DefaultSearchBudget, pruned)
		ref := &Scratch{noBounds: true}
		p2, ok2 := Search(st, demand, size, sparse, DefaultSearchBudget, ref)
		if ok1 != ok2 {
			t.Fatalf("size=%d demand=%d sparse=%v: pruned ok=%v, unpruned ok=%v",
				size, demand, sparse, ok1, ok2)
		}
		if ok1 && !reflect.DeepEqual(p1, p2) {
			t.Fatalf("size=%d demand=%d sparse=%v: pruned and unpruned found different partitions\npruned:   %+v\nunpruned: %+v",
				size, demand, sparse, p1, p2)
		}
	}
}

// FuzzSearchPruned is the pruning-soundness differential: across random
// states, demands, sizes, and degraded fabrics, the pruned search and the
// unpruned reference must return identical partitions or identical misses.
// Every admissibility bound is meant to be a necessary condition; any seed
// where pruning changes the outcome is a soundness bug.
func FuzzSearchPruned(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{1, 2, 4, 3, 7, 2, 200, 1, 3, 5, 2, 9, 0, 0, 61, 17, 88, 3, 4, 5})
	f.Add([]byte{2, 0, 0, 255, 8, 1, 1, 2, 3, 4, 5, 6, 7, 8, 9, 40, 41, 42, 43})
	f.Add([]byte{2, 2, 4, 9, 8, 4, 3, 12, 1, 30, 2, 2, 2, 2, 2, 2, 77, 13, 9, 1, 0, 200, 6})
	f.Add([]byte{1, 1, 3, 5, 7, 2, 0, 6, 2, 4, 1, 3, 128, 9, 31, 64, 2, 2, 250, 11})
	f.Fuzz(func(t *testing.T, data []byte) {
		fd := &byteFeed{data: data}
		st, capacity := buildFuzzState(t, fd)
		checkPrunedMatchesUnpruned(t, st, capacity, fd)
	})
}

// TestSearchBudgetIsWholeSearch pins the budget contract: budget is one pool
// for the entire search — the two-level pass, the three-level pass, and
// every factorization draw from it — so a budget-B search performs at most B
// backtracking extensions before giving up, and a search that completes
// within the budget is unaffected by it.
func TestSearchBudgetIsWholeSearch(t *testing.T) {
	tree := topology.MustNew(16)
	podNodes := tree.LeavesPerPod * tree.NodesPerLeaf

	// A three-level hit on the empty machine: the extensions to reach it
	// are deterministic, so the unbudgeted step count U is exact.
	empty := topology.NewState(tree, 1)
	size := 3*podNodes + tree.NodesPerLeaf
	p, ok, used := search(empty, 1, size, false, DefaultSearchBudget, nil)
	if !ok || p == nil {
		t.Fatalf("three-level hit expected on empty machine")
	}
	if used <= 0 {
		t.Fatalf("a backtracking hit must consume steps, used = %d", used)
	}
	if used > DefaultSearchBudget {
		t.Fatalf("used %d exceeds budget %d", used, DefaultSearchBudget)
	}

	// Exactly U steps suffice; any smaller budget must stop within bound
	// and report a miss instead of overdrawing.
	if _, ok, u := search(empty, 1, size, false, used, nil); !ok || u != used {
		t.Fatalf("budget == steps-needed (%d) must still find the partition (ok=%v used=%d)", used, ok, u)
	}
	for _, budget := range []int{0, 1, used / 2, used - 1} {
		_, ok, u := search(empty, 1, size, false, budget, nil)
		if ok {
			t.Fatalf("budget %d < %d must exhaust before the partition is found", budget, used)
		}
		if u > budget {
			t.Fatalf("budget %d: search consumed %d steps, beyond the bound", budget, u)
		}
	}

	// The two-level pass is budgeted too (it used to run unbounded): a
	// two-level hit consumes steps, and budget 0 forbids even that.
	if _, ok, u := search(empty, 1, podNodes-3, false, DefaultSearchBudget, nil); !ok || u <= 0 {
		t.Fatalf("two-level hit must consume budget steps (ok=%v used=%d)", ok, u)
	}
	if _, ok, u := search(empty, 1, podNodes-3, false, 0, nil); ok || u != 0 {
		t.Fatalf("budget 0 must stop the two-level pass before any extension (ok=%v used=%d)", ok, u)
	}
}

// TestFindTwoLevelNilBudget pins that a nil steps pointer means unbudgeted:
// the LC+S policy relies on it (it budgets per pod probe at its own
// granularity; see internal/lcs).
func TestFindTwoLevelNilBudget(t *testing.T) {
	tree := topology.MustNew(8)
	st := topology.NewState(tree, 1)
	p, ok := FindTwoLevel(st, 1, 1, tree.LeavesPerPod, tree.NodesPerLeaf, 0, nil, nil)
	if !ok {
		t.Fatal("full pod must fit on an empty machine")
	}
	if got := p.Size(); got != tree.LeavesPerPod*tree.NodesPerLeaf {
		t.Fatalf("size = %d", got)
	}
	steps := DefaultSearchBudget
	p2, ok2 := FindTwoLevel(st, 1, 1, tree.LeavesPerPod, tree.NodesPerLeaf, 0, &steps, nil)
	if !ok2 || !reflect.DeepEqual(p, p2) {
		t.Fatal("budgeted and unbudgeted searches must agree when the budget is ample")
	}
	if steps >= DefaultSearchBudget {
		t.Fatal("a budgeted two-level search must charge its extensions")
	}
}
