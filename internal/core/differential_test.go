package core_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/laas"
	"repro/internal/topology"
)

// TestQuickJigsawSubsumesLaaS is the differential form of the paper's
// flexibility argument: every LaaS placement is a whole-leaf special case of
// Jigsaw's conditions, so whenever LaaS can place a job on a given machine
// state, Jigsaw (run on an identical state) must be able to place it too —
// with no more nodes than requested.
func TestQuickJigsawSubsumesLaaS(t *testing.T) {
	tree := topology.MustNew(8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		la := laas.NewAllocator(tree)
		ja := core.NewAllocator(tree)

		// Drive both allocators through the same placement history so their
		// states stay identical: allocate with LaaS and mirror into Jigsaw.
		for step := 0; step < 40; step++ {
			size := 1 + rng.Intn(30)
			pl, ok := la.Allocate(topology.JobID(step+1), size)
			if !ok {
				// LaaS failed: Jigsaw must still succeed or the free nodes
				// must genuinely not accommodate the job (Jigsaw succeeding
				// is fine — it is strictly more flexible — so only check
				// the reverse implication below).
				continue
			}
			// Before mirroring, confirm Jigsaw could have placed it.
			p, jok := ja.FindPartition(size)
			if !jok {
				t.Logf("seed %d step %d: LaaS placed %d nodes but Jigsaw could not", seed, step, size)
				return false
			}
			if p.Size() != size {
				t.Logf("seed %d: Jigsaw over-allocated %d for %d", seed, p.Size(), size)
				return false
			}
			// Keep states identical: apply the LaaS placement to Jigsaw's
			// state too.
			ja.Mirror(pl)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestFindTwoLevelEdgeCases exercises the search primitive directly.
func TestFindTwoLevelEdgeCases(t *testing.T) {
	tree := topology.MustNew(8)
	st := topology.NewState(tree, 1)

	// Degenerate parameters are rejected.
	if _, ok := core.FindTwoLevel(st, 1, 0, 0, 2, 0, nil, nil); ok {
		t.Fatal("LT=0 must fail")
	}
	if _, ok := core.FindTwoLevel(st, 1, 0, 1, 0, 0, nil, nil); ok {
		t.Fatal("nL=0 must fail")
	}
	if _, ok := core.FindTwoLevel(st, 1, 0, 1, 2, 2, nil, nil); ok {
		t.Fatal("nrL >= nL must fail")
	}
	if _, ok := core.FindTwoLevel(st, 1, 0, 5, 1, 0, nil, nil); ok {
		t.Fatal("more leaves than the pod has must fail")
	}

	// Largest single-pod allocation: all leaves, all nodes.
	p, ok := core.FindTwoLevel(st, 1, 2, tree.LeavesPerPod, tree.NodesPerLeaf, 0, nil, nil)
	if !ok {
		t.Fatal("full pod must fit")
	}
	if p.Size() != tree.PodNodes() || p.Trees[0].Pod != 2 {
		t.Fatalf("unexpected partition %+v", p)
	}
	if err := p.Verify(tree); err != nil {
		t.Fatal(err)
	}
}

// TestFindThreeLevelEdgeCases exercises the whole-leaf search directly.
func TestFindThreeLevelEdgeCases(t *testing.T) {
	tree := topology.MustNew(8)
	st := topology.NewState(tree, 1)
	steps := core.DefaultSearchBudget

	if _, ok := core.FindThreeLevel(st, 1, 0, 1, 0, 0, &steps, nil); ok {
		t.Fatal("T=0 must fail")
	}
	if _, ok := core.FindThreeLevel(st, 1, 1, tree.LeavesPerPod+1, 0, 0, &steps, nil); ok {
		t.Fatal("LT beyond pod must fail")
	}
	// Remainder tree at least as large as full trees is illegal.
	if _, ok := core.FindThreeLevel(st, 1, 1, 2, 2, 0, &steps, nil); ok {
		t.Fatal("LrT == LT with nrL=0 must fail")
	}
	// Whole machine.
	p, ok := core.FindThreeLevel(st, 1, tree.Pods, tree.LeavesPerPod, 0, 0, &steps, nil)
	if !ok {
		t.Fatal("whole machine must fit")
	}
	if p.Size() != tree.Nodes() {
		t.Fatalf("size = %d", p.Size())
	}
	if err := p.Verify(tree); err != nil {
		t.Fatal(err)
	}
	// Remainder tree that is only a remainder leaf.
	st2 := topology.NewState(tree, 1)
	steps = core.DefaultSearchBudget
	p2, ok := core.FindThreeLevel(st2, 1, 2, 2, 0, 3, &steps, nil)
	if !ok {
		t.Fatal("remainder-leaf-only tree must fit on an empty machine")
	}
	if err := p2.Verify(tree); err != nil {
		t.Fatal(err)
	}
	if p2.Size() != 2*2*tree.NodesPerLeaf+3 {
		t.Fatalf("size = %d", p2.Size())
	}
}

// TestSearchBudgetExhaustion confirms the step budget aborts cleanly.
func TestSearchBudgetExhaustion(t *testing.T) {
	tree := topology.MustNew(8)
	st := topology.NewState(tree, 1)
	steps := 1
	if _, ok := core.FindThreeLevel(st, 1, 4, 4, 0, 0, &steps, nil); ok {
		t.Fatal("a one-step budget cannot finish a four-tree search")
	}
}
