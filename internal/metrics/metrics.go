// Package metrics computes the evaluation metrics of Section 5 from
// simulation results: steady-state average system utilization, job
// turnaround time, makespan (throughput), instantaneous-utilization
// frequencies (Table 2), and average scheduling time per job (Table 3).
package metrics

import "repro/internal/sched"

// Utilization returns the average system utilization over the steady-state
// portion of the run:
//
//	U = sum_j N_j * t_j / (N_system * t_total)
//
// integrated from the first arrival to the start of the final drain (the
// last moment the queue was non-empty), matching the paper's exclusion of
// the ramp-down. If the queue never formed (offered load below capacity for
// the whole run), the full span is used.
func Utilization(r *sched.Result) float64 {
	start := r.FirstArrival
	end := r.SteadyEnd
	if end <= start {
		end = r.LastEnd
	}
	return SeriesUtilization(r.UtilSeries, start, end, r.SystemNodes)
}

// SeriesUtilization integrates a used-node step function over [start, end]
// and normalizes by systemNodes. The final point's value extends to end,
// which lets the online daemon evaluate utilization-to-now on a series that
// is still open. It returns 0 on an empty series or a degenerate interval.
func SeriesUtilization(series []sched.UtilPoint, start, end float64, systemNodes int) float64 {
	if end <= start || len(series) == 0 || systemNodes <= 0 {
		return 0
	}
	integral := 0.0
	for i, p := range series {
		t0 := p.T
		t1 := end
		if i+1 < len(series) {
			t1 = series[i+1].T
		}
		if t0 < start {
			t0 = start
		}
		if t1 > end {
			t1 = end
		}
		if t1 > t0 {
			integral += float64(p.Used) * (t1 - t0)
		}
	}
	return integral / (float64(systemNodes) * (end - start))
}

// Makespan is the time from the first arrival to the last completion
// (Section 5's throughput proxy).
func Makespan(r *sched.Result) float64 { return r.LastEnd - r.FirstArrival }

// MeanTurnaround averages turnaround time over jobs larger than minSize
// nodes (0 covers all jobs; the paper's "large jobs" use 100). It returns 0
// when no job qualifies.
func MeanTurnaround(r *sched.Result, minSize int) float64 {
	sum, n := 0.0, 0
	for _, rec := range r.Records {
		if rec.Job.Size > minSize {
			sum += rec.Turnaround()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Table2Bounds are the paper's instantaneous-utilization buckets, in
// percent: >=98, 95-97, 90-95, 80-90, 60-80, <=60.
var Table2Bounds = []float64{98, 95, 90, 80, 60}

// Table2Labels name the buckets in report order.
var Table2Labels = []string{">=98", "95-97", "90-95", "80-90", "60-80", "<=60"}

// InstHistogram counts instantaneous-utilization samples per Table 2 bucket.
func InstHistogram(r *sched.Result) []int {
	counts := make([]int, len(Table2Bounds)+1)
	for _, s := range r.InstSamples {
		pct := s * 100
		placed := false
		for i, b := range Table2Bounds {
			if pct >= b {
				counts[i]++
				placed = true
				break
			}
		}
		if !placed {
			counts[len(counts)-1]++
		}
	}
	return counts
}

// AvgSchedTime is the average wall-clock scheduling (allocation search) time
// per job in seconds (Table 3).
func AvgSchedTime(r *sched.Result) float64 {
	n := len(r.Records) + len(r.Rejected)
	if n == 0 {
		return 0
	}
	return r.AllocSeconds / float64(n)
}
