package metrics

import (
	"math"
	"testing"

	"repro/internal/sched"
	"repro/internal/trace"
)

func TestUtilizationSimpleWindow(t *testing.T) {
	// 8 of 16 nodes busy from t=0 to t=100, queue active until t=60.
	r := &sched.Result{
		SystemNodes:  16,
		FirstArrival: 0,
		LastEnd:      100,
		SteadyEnd:    60,
		UtilSeries:   []sched.UtilPoint{{T: 0, Used: 8}, {T: 100, Used: 0}},
	}
	got := Utilization(r)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.5", got)
	}
}

func TestUtilizationExcludesDrain(t *testing.T) {
	// Full machine until t=50, then half until t=100; queue empties at 50:
	// the drain (50..100) must not count.
	r := &sched.Result{
		SystemNodes:  16,
		FirstArrival: 0,
		LastEnd:      100,
		SteadyEnd:    50,
		UtilSeries:   []sched.UtilPoint{{T: 0, Used: 16}, {T: 50, Used: 8}, {T: 100, Used: 0}},
	}
	if got := Utilization(r); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("utilization = %g, want 1.0 (drain excluded)", got)
	}
}

func TestUtilizationFallsBackToFullSpan(t *testing.T) {
	// Queue never formed: SteadyEnd is zero, so the full span is used.
	r := &sched.Result{
		SystemNodes:  16,
		FirstArrival: 0,
		LastEnd:      100,
		UtilSeries:   []sched.UtilPoint{{T: 0, Used: 4}, {T: 100, Used: 0}},
	}
	if got := Utilization(r); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("utilization = %g, want 0.25", got)
	}
}

func TestMeanTurnaroundFilters(t *testing.T) {
	r := &sched.Result{
		Records: []sched.Record{
			{Job: trace.Job{Size: 1, Arrival: 0}, End: 10},
			{Job: trace.Job{Size: 200, Arrival: 0}, End: 100},
			{Job: trace.Job{Size: 150, Arrival: 50}, End: 250},
		},
	}
	if got := MeanTurnaround(r, 0); math.Abs(got-(10+100+200)/3.0) > 1e-12 {
		t.Fatalf("all-jobs turnaround = %g", got)
	}
	if got := MeanTurnaround(r, 100); math.Abs(got-150) > 1e-12 {
		t.Fatalf("large-jobs turnaround = %g", got)
	}
	if MeanTurnaround(r, 1000) != 0 {
		t.Fatal("empty filter must return 0")
	}
}

func TestInstHistogramBuckets(t *testing.T) {
	r := &sched.Result{
		InstSamples: []float64{1.0, 0.985, 0.96, 0.93, 0.85, 0.7, 0.5, 0.0},
	}
	got := InstHistogram(r)
	want := []int{2, 1, 1, 1, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %s = %d, want %d", Table2Labels[i], got[i], want[i])
		}
	}
}

func TestMakespanAndSchedTime(t *testing.T) {
	r := &sched.Result{
		FirstArrival: 10,
		LastEnd:      110,
		AllocSeconds: 0.5,
		Records:      make([]sched.Record, 99),
		Rejected:     make([]trace.Job, 1),
	}
	if Makespan(r) != 100 {
		t.Fatal("makespan wrong")
	}
	if got := AvgSchedTime(r); math.Abs(got-0.005) > 1e-12 {
		t.Fatalf("sched time = %g", got)
	}
}
