package jigsaw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	tree, err := NewFatTree(8)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range Schemes() {
		a, err := NewAllocator(scheme, tree)
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != scheme {
			t.Fatalf("allocator name %q != scheme %q", a.Name(), scheme)
		}
		pl, ok := a.Allocate(1, 10)
		if !ok {
			t.Fatalf("%s: allocation failed on empty machine", scheme)
		}
		a.Release(pl)
		if a.FreeNodes() != tree.Nodes() {
			t.Fatalf("%s: leak", scheme)
		}
	}
	if _, err := NewAllocator("bogus", tree); err == nil {
		t.Fatal("unknown scheme must error")
	}
}

func TestPublicSimulationRun(t *testing.T) {
	tree, _ := NewFatTree(8)
	a, _ := NewAllocator(SchemeJigsaw, tree)
	sc, err := ScenarioByName("10%")
	if err != nil {
		t.Fatal(err)
	}
	s := NewScheduler(a, sc)
	s.MeasureAllocTime = false
	tr := &Trace{Name: "t", SystemNodes: tree.Nodes(), Jobs: []Job{
		{ID: 1, Size: 30, Arrival: 0, Runtime: 110},
		{ID: 2, Size: 60, Arrival: 0, Runtime: 110},
	}}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 2 {
		t.Fatal("both jobs should run")
	}
	if got := res.Records[0].End; math.Abs(got-100) > 1e-9 {
		t.Fatalf("10%% speed-up should shorten the 110 s job to 100 s, got %g", got)
	}
	if Utilization(res) <= 0 || math.Abs(Makespan(res)-100) > 1e-9 {
		t.Fatal("metrics inconsistent")
	}
	if math.Abs(MeanTurnaround(res, 0)-100) > 1e-9 {
		t.Fatalf("turnaround = %g", MeanTurnaround(res, 0))
	}
}

func TestPublicRoutingRoundTrip(t *testing.T) {
	tree, _ := NewFatTree(8)
	a := NewJigsawAllocator(tree)
	p, ok := a.FindPartition(24)
	if !ok {
		t.Fatal("no partition")
	}
	if err := VerifyPartition(p, tree); err != nil {
		t.Fatal(err)
	}
	perm := rand.New(rand.NewSource(3)).Perm(24)
	routes, err := RoutePermutation(tree, p, perm)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyRoutes(tree, p, routes); err != nil {
		t.Fatal(err)
	}
}

func TestPublicScenarioAndTraceListings(t *testing.T) {
	if len(Scenarios()) != 6 {
		t.Fatal("expected six scenarios")
	}
	ts := Traces(0.02)
	if len(ts) != 9 {
		t.Fatal("expected nine traces")
	}
	for _, tr := range ts {
		if err := tr.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	_ = trace.All // keep the internal import honest
}
