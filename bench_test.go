package jigsaw

// The benchmarks below regenerate the paper's evaluation artifacts — one
// benchmark per table and figure (see DESIGN.md's experiment index) — plus
// the ablations called out in DESIGN.md and micro-benchmarks of the
// allocators themselves. The table/figure benchmarks run the same code as
// cmd/experiments at a reduced trace scale so `go test -bench=.` finishes in
// minutes; utilization-style outcomes are attached with b.ReportMetric.

import (
	"io"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/scenario"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/trace"
)

// benchScale keeps bench iterations tractable; cmd/experiments raises it.
const benchScale = 0.01

// BenchmarkTable1TraceGen regenerates Table 1's nine traces.
func BenchmarkTable1TraceGen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ts := trace.All(0.1)
		if len(ts) != 9 {
			b.Fatal("expected nine traces")
		}
	}
}

// BenchmarkFigure6Utilization regenerates Figure 6 (average system
// utilization, all traces x all schemes) and reports Jigsaw's mean
// utilization across traces.
func BenchmarkFigure6Utilization(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Figure6Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for _, r := range rows {
			sum += r.Util["Jigsaw"]
		}
		b.ReportMetric(100*sum/float64(len(rows)), "jigsaw-util-%")
	}
}

// BenchmarkTable2Instantaneous regenerates Table 2 (instantaneous
// utilization frequencies on Thunder).
func BenchmarkTable2Instantaneous(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	for i := 0; i < b.N; i++ {
		data, err := experiments.Table2Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(data) != 3 {
			b.Fatal("expected three schemes")
		}
	}
}

// BenchmarkFigure7Turnaround regenerates Figure 7 (normalized turnaround,
// Aug-Cab) and reports Jigsaw's all-jobs ratio under the 10% scenario.
func BenchmarkFigure7Turnaround(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	for i := 0; i < b.N; i++ {
		d, err := experiments.Figure7Data(cfg, trace.AugCab(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Cells["10%"]["Jigsaw"].All, "jigsaw-10%-norm-turnaround")
	}
}

// BenchmarkFigure8Makespan regenerates Figure 8 (normalized makespans,
// Thunder) and reports Jigsaw's ratio under the 10% scenario.
func BenchmarkFigure8Makespan(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	for i := 0; i < b.N; i++ {
		d, err := experiments.Figure8Data(cfg, trace.ThunderLike(benchScale))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(d.Cells["10%"]["Jigsaw"], "jigsaw-10%-norm-makespan")
	}
}

// BenchmarkTable3SchedulingTime regenerates Table 3 (average scheduling time
// per job) and reports Jigsaw's time on the largest cluster in
// microseconds.
func BenchmarkTable3SchedulingTime(b *testing.B) {
	cfg := experiments.Config{Scale: benchScale, Out: io.Discard}
	for i := 0; i < b.N; i++ {
		data, _, err := experiments.Table3Data(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1e6*data["Jigsaw"]["Synth-28"], "jigsaw-synth28-us/job")
	}
}

// allocBench drives one allocator through a steady allocate/release churn at
// ~90% occupancy, the regime that matters for scheduling time.
func allocBench(b *testing.B, scheme string, radix int) {
	tree := topology.MustNew(radix)
	a, err := NewAllocator(scheme, tree)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var live []*Placement
	id := JobID(1)
	// Fill towards ~90% occupancy. The attempt bound matters for the
	// link-sharing schemes, whose links can exhaust before nodes do.
	for tries := 0; a.FreeNodes() > tree.Nodes()/10 && tries < 5000; tries++ {
		size := 1 + rng.Intn(2*radix)
		if pl, ok := a.Allocate(id, size); ok {
			live = append(live, pl)
		}
		id++
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := rng.Intn(len(live))
		released := live[j]
		a.Release(released)
		size := 1 + rng.Intn(2*radix)
		if pl, ok := a.Allocate(id, size); ok {
			live[j] = pl
		} else {
			// Restore the released placement so occupancy holds.
			a.Mirror(released)
		}
		id++
	}
}

func BenchmarkAllocateJigsaw1024(b *testing.B)   { allocBench(b, SchemeJigsaw, 16) }
func BenchmarkAllocateJigsaw5488(b *testing.B)   { allocBench(b, SchemeJigsaw, 28) }
func BenchmarkAllocateLaaS1024(b *testing.B)     { allocBench(b, SchemeLaaS, 16) }
func BenchmarkAllocateTA1024(b *testing.B)       { allocBench(b, SchemeTA, 16) }
func BenchmarkAllocateLCS1024(b *testing.B)      { allocBench(b, SchemeLCS, 16) }
func BenchmarkAllocateBaseline1024(b *testing.B) { allocBench(b, SchemeBaseline, 16) }

// BenchmarkEngineSubmitThroughput measures the online engine's sustained
// job-intake rate (Submit + AdvanceTo, i.e. the work jigsawd does per
// request) on a 1024-node tree under the Jigsaw policy at ~90% offered load.
func BenchmarkEngineSubmitThroughput(b *testing.B) {
	tree := topology.MustNew(16) // 1024 nodes
	eng, err := NewEngine(EngineConfig{Alloc: core.NewAllocator(tree)})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Mean job ≈ 12.5 nodes x 300 s over a 4 s interarrival ≈ 0.92 of the
	// machine, so the queue stays busy without growing unboundedly.
	const interarrival = 4.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrival := float64(i) * interarrival
		eng.AdvanceTo(arrival)
		j := Job{
			ID:      int64(i + 1),
			Size:    1 + rng.Intn(24),
			Arrival: arrival,
			Runtime: 60 + rng.Float64()*480,
		}
		if err := eng.Submit(j); err != nil {
			b.Fatal(err)
		}
	}
	// Drain so every iteration pays its completion events too.
	for {
		if _, ok := eng.Step(); !ok {
			break
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkEngineBackfillHeavy measures the EASY what-if path directly: a
// near-machine-sized job blocks the head of the queue every 25 submissions,
// so a deep backlog of small jobs is admitted through reservation and
// displacement checks (non-conservative backfill) on almost every event.
// This is the path the undo-journal transactions optimize; the steady-load
// BenchmarkEngineSubmitThroughput above barely exercises it.
func BenchmarkEngineBackfillHeavy(b *testing.B) {
	tree := topology.MustNew(16) // 1024 nodes
	eng, err := NewEngine(EngineConfig{Alloc: core.NewAllocator(tree)})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrival := float64(i)
		eng.AdvanceTo(arrival)
		size := 1 + rng.Intn(16)
		if i%25 == 24 {
			// Blocker: needs nearly the whole machine, so it parks at the
			// head while the window backfills around it.
			size = tree.Nodes() - rng.Intn(32)
		}
		j := Job{
			ID:      int64(i + 1),
			Size:    size,
			Arrival: arrival,
			Runtime: 200 + rng.Float64()*400,
		}
		if err := eng.Submit(j); err != nil {
			b.Fatal(err)
		}
	}
	for {
		if _, ok := eng.Step(); !ok {
			break
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkEngineQueueHeavyHomogeneous measures the schedule pass against a
// deep backlog of same-size jobs whose placement search genuinely fails: 128
// long-running size-7 jobs fragment the 1024-node machine so every leaf
// keeps one free node (128 free nodes total), and the size-12 jobs that then
// arrive are count-feasible — no cheap free-node precheck rejects them — but
// shape-infeasible, so each backfill probe pays a full exhaustive search.
// Every arrival rescans the backfill window over identical candidates; a
// trickle of cancellations keeps the state version moving. This is the
// regime the engine's negative-feasibility cache targets: one failing search
// per state version instead of one per candidate per pass. Run with a fixed
// -benchtime count when comparing builds — the backlog grows with N.
func BenchmarkEngineQueueHeavyHomogeneous(b *testing.B) {
	tree := topology.MustNew(16) // 1024 nodes: 16 pods x 8 leaves x 8 nodes
	eng, err := NewEngine(EngineConfig{Alloc: core.NewAllocator(tree)})
	if err != nil {
		b.Fatal(err)
	}
	// Fragmentation backbone: one size-7 job per leaf (dense-first packing
	// puts each on its own leaf), leaving every leaf with 1 free node and 1
	// free uplink. Any size in 9..128 is then count-feasible but has no
	// legal shape until leaves are freed.
	nLeaves := int64(tree.Leaves())
	for id := int64(1); id <= nLeaves; id++ {
		if err := eng.Submit(Job{ID: id, Size: 7, Arrival: 0, Runtime: 1e9}); err != nil {
			b.Fatal(err)
		}
	}
	eng.AdvanceTo(0)
	if s := eng.Snapshot(); s.FreeNodes != tree.Leaves() || s.QueueDepth != 0 {
		b.Fatalf("backbone did not fragment as expected: %+v", s)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arrival := float64(i)
		eng.AdvanceTo(arrival)
		if err := eng.Submit(Job{ID: nLeaves + int64(i) + 1, Size: 12, Arrival: arrival, Runtime: 10}); err != nil {
			b.Fatal(err)
		}
		// Periodically cancel a backbone job: the release invalidates any
		// cached verdicts and can open a whole leaf, letting some of the
		// backlog through — the cache must keep up with a moving state.
		if i%64 == 63 && int64(i/64) < nLeaves {
			if _, err := eng.Cancel(int64(i/64) + 1); err != nil {
				b.Fatal(err)
			}
		}
	}
	for {
		if _, ok := eng.Step(); !ok {
			break
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

// BenchmarkRoutePermutation measures the constructive rearrangeable
// non-blocking router on a multi-tree partition.
func BenchmarkRoutePermutation(b *testing.B) {
	tree := topology.MustNew(16)
	a := core.NewAllocator(tree)
	p, ok := a.FindPartition(200)
	if !ok {
		b.Fatal("no partition")
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perm := rng.Perm(200)
		if _, err := RoutePermutation(tree, p, perm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationFactorizationOrder compares Jigsaw's dense-first
// two-level factorization order against sparse-first (DESIGN.md Section 7),
// reporting the utilization each achieves on Synth-16.
func BenchmarkAblationFactorizationOrder(b *testing.B) {
	for _, sparse := range []bool{false, true} {
		name := "dense-first"
		if sparse {
			name = "sparse-first"
		}
		b.Run(name, func(b *testing.B) {
			tr := trace.Synth16(benchScale)
			for i := 0; i < b.N; i++ {
				tree := topology.MustNew(16)
				a := core.NewAllocator(tree)
				a.SparseFirst = sparse
				s := sched.New(a, scenario.None{})
				s.MeasureAllocTime = false
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*metrics.Utilization(res), "util-%")
			}
		})
	}
}

// BenchmarkAblationBackfill compares EASY backfilling against pure FIFO
// under Jigsaw (the capability the paper's authors added to the simulator).
func BenchmarkAblationBackfill(b *testing.B) {
	for _, backfill := range []bool{true, false} {
		name := "easy"
		if !backfill {
			name = "fifo"
		}
		b.Run(name, func(b *testing.B) {
			tr := trace.Synth16(benchScale)
			for i := 0; i < b.N; i++ {
				tree := topology.MustNew(16)
				a := core.NewAllocator(tree)
				s := sched.New(a, scenario.None{})
				s.MeasureAllocTime = false
				s.DisableBackfill = !backfill
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*metrics.Utilization(res), "util-%")
			}
		})
	}
}

// BenchmarkAblationJigsawSharing contrasts strict Jigsaw with the Jigsaw+S
// extension (link sharing at Jigsaw shapes): sharing should match or beat
// strict isolation on utilization at the cost of the zero-interference
// guarantee.
func BenchmarkAblationJigsawSharing(b *testing.B) {
	for _, scheme := range []string{SchemeJigsaw, SchemeJigsawS} {
		b.Run(scheme, func(b *testing.B) {
			tr := trace.Synth16(benchScale)
			tree := topology.MustNew(16)
			for i := 0; i < b.N; i++ {
				a, err := NewAllocator(scheme, tree)
				if err != nil {
					b.Fatal(err)
				}
				s := sched.New(a, scenario.None{})
				s.MeasureAllocTime = false
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*metrics.Utilization(res), "util-%")
			}
		})
	}
}

// BenchmarkAblationWholeLeafRestriction contrasts Jigsaw's whole-leaf
// three-level restriction with the fully-permissive legal placement space
// (LC+S's search without link sharing is the closest stand-in): Section 4
// argues the restriction buys both speed and utilization.
func BenchmarkAblationWholeLeafRestriction(b *testing.B) {
	for _, scheme := range []string{SchemeJigsaw, SchemeLCS} {
		b.Run(scheme, func(b *testing.B) {
			tr := trace.Synth16(benchScale)
			tree := topology.MustNew(16)
			for i := 0; i < b.N; i++ {
				a, err := NewAllocator(scheme, tree)
				if err != nil {
					b.Fatal(err)
				}
				s := sched.New(a, scenario.None{})
				s.MeasureAllocTime = false
				res, err := s.Run(tr)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*metrics.Utilization(res), "util-%")
			}
		})
	}
}
